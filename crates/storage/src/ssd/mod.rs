//! Simulated NAND-flash solid-state drive.
//!
//! The substitute for the paper's Fusion-io ioDrive 80 G SLC. The facade in
//! this module owns a [`Ftl`] (mapping, allocation, garbage collection, wear)
//! and charges the physical operations it emits to per-channel timing,
//! operation statistics, and the energy meter.
//!
//! The properties the evaluation depends on are all modelled:
//! fast random reads (~25 µs), slower programs (~200 µs), millisecond
//! erases that stall a channel, garbage-collection write amplification
//! under sustained random writes, and bounded per-block endurance.

pub mod flash;
pub mod ftl;
pub mod wear;

use crate::block::BLOCK_SIZE;
use crate::energy::{ssd_op_energy, EnergyMeter, MicroJoules};
use crate::fault::{FaultInjector, FaultStats};
use crate::stats::DeviceStats;
use crate::time::Ns;
use crate::trace::{TraceEvent, TraceKind, Tracer};
use flash::{FlashConfig, FlashOp};
use ftl::{Ftl, GcStats};
use serde::{Deserialize, Serialize};

/// Errors reported by the SSD model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SsdError {
    /// Every page of every usable block is valid; nothing can be reclaimed.
    Full,
    /// So many blocks hit the endurance limit that no free space remains.
    WornOut,
    /// A read addressed a logical page with no mapping.
    Unmapped {
        /// The unmapped logical page.
        lpn: u64,
    },
    /// A read's bit errors exceeded ECC correction capability. The page
    /// stays unreadable until reprogrammed or trimmed.
    Uncorrectable {
        /// The uncorrectable logical page.
        lpn: u64,
    },
    /// The whole device has died (a `ssd_dies_at` fault trigger fired);
    /// every operation fails until the device is replaced.
    DeviceDead,
}

impl core::fmt::Display for SsdError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SsdError::Full => write!(f, "no reclaimable flash space"),
            SsdError::WornOut => write!(f, "flash endurance exhausted"),
            SsdError::Unmapped { lpn } => write!(f, "read of unmapped logical page {lpn}"),
            SsdError::Uncorrectable { lpn } => {
                write!(f, "uncorrectable bit errors reading logical page {lpn}")
            }
            SsdError::DeviceDead => write!(f, "flash device failed"),
        }
    }
}

impl std::error::Error for SsdError {}

/// Configuration of a simulated SSD.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SsdConfig {
    /// Logical capacity in 4 KB pages.
    pub capacity_pages: u64,
    /// Flash geometry and timing.
    pub flash: FlashConfig,
}

impl SsdConfig {
    /// An SLC drive in the paper's Fusion-io class with the given logical
    /// capacity in bytes (rounded up to whole pages) and 10 % spare area.
    pub fn fusion_io(capacity_bytes: u64) -> Self {
        let pages = capacity_bytes.div_ceil(BLOCK_SIZE as u64).max(1);
        SsdConfig {
            capacity_pages: pages,
            flash: FlashConfig::slc(pages, 0.10),
        }
    }
}

/// A timed NAND-flash SSD.
///
/// # Examples
///
/// ```
/// use icash_storage::ssd::{Ssd, SsdConfig};
/// use icash_storage::time::Ns;
///
/// let mut ssd = Ssd::new(SsdConfig::fusion_io(1 << 20));
/// let done = ssd.write(Ns::ZERO, 3)?;
/// let read_done = ssd.read(done, 3)?;
/// assert!(read_done > done);
/// # Ok::<(), icash_storage::ssd::SsdError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Ssd {
    ftl: Ftl,
    channel_busy: Vec<Ns>,
    /// Deferred erase time per channel (queue mode only): erases queued
    /// behind host traffic, paid when the channel's queue fills.
    deferred: Vec<Ns>,
    /// Count of deferred erases per channel (queue occupancy).
    deferred_count: Vec<u32>,
    /// Admission instant of each deferred erase per channel, so the burst
    /// payment can record admission-to-completion latencies.
    deferred_at: Vec<Vec<Ns>>,
    stats: DeviceStats,
    energy: EnergyMeter,
    /// Fault injection, absent by default (the common, zero-cost case).
    faults: Option<Box<FaultInjector>>,
    /// Event emission, disabled by default (one `Option` check per op).
    tracer: Tracer,
}

impl Ssd {
    /// Creates a drive with the given configuration.
    pub fn new(cfg: SsdConfig) -> Self {
        let energy = EnergyMeter::new(cfg.flash.idle_watts, cfg.flash.active_watts);
        let channels = cfg.flash.channels as usize;
        Ssd {
            ftl: Ftl::new(cfg.flash, cfg.capacity_pages),
            channel_busy: vec![Ns::ZERO; channels],
            deferred: vec![Ns::ZERO; channels],
            deferred_count: vec![0; channels],
            deferred_at: vec![Vec::new(); channels],
            stats: DeviceStats::new(),
            energy,
            faults: None,
            tracer: Tracer::disabled(),
        }
    }

    /// Installs a fault injector; subsequent reads may report
    /// [`SsdError::Uncorrectable`] according to its plan.
    pub fn install_faults(&mut self, mut injector: FaultInjector) {
        injector.set_tracer(self.tracer.clone());
        self.faults = Some(Box::new(injector));
    }

    /// Attaches (or detaches) the trace event handle, propagating it into
    /// an already-installed fault injector.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        if let Some(f) = self.faults.as_mut() {
            f.set_tracer(tracer.clone());
        }
        self.tracer = tracer;
    }

    /// Fault counters, when an injector is installed.
    pub fn fault_stats(&self) -> Option<&FaultStats> {
        self.faults.as_ref().map(|f| f.stats())
    }

    /// Logical capacity in pages.
    pub fn capacity_pages(&self) -> u64 {
        self.ftl.logical_pages()
    }

    /// Host-level operation statistics (Table 6 reads `stats().writes`).
    pub fn stats(&self) -> &DeviceStats {
        &self.stats
    }

    /// Garbage-collection statistics (write amplification).
    pub fn gc_stats(&self) -> &GcStats {
        self.ftl.gc_stats()
    }

    /// Wear counters.
    pub fn wear(&self) -> &wear::WearTracker {
        self.ftl.wear()
    }

    /// Whether `lpn` currently holds data.
    pub fn is_mapped(&self, lpn: u64) -> bool {
        self.ftl.map_read(lpn).is_some()
    }

    /// Total energy drawn over `elapsed` of virtual time.
    pub fn energy(&self, elapsed: Ns) -> MicroJoules {
        self.energy.total(elapsed, self.stats.busy)
    }

    /// Reads logical page `lpn`, arriving at `at`. Returns the completion
    /// instant.
    ///
    /// # Errors
    ///
    /// Returns [`SsdError::Unmapped`] if the page holds no data, or
    /// [`SsdError::Uncorrectable`] if fault injection failed the read (the
    /// flash time was still spent grinding through ECC retries).
    pub fn read(&mut self, at: Ns, lpn: u64) -> Result<Ns, SsdError> {
        let ppn = self.ftl.map_read(lpn).ok_or(SsdError::Unmapped { lpn })?;
        let op = FlashOp::Read { ppn };
        let (queued, service, done) = self.charge(at, &[op]);
        self.stats.record_read(BLOCK_SIZE, queued, service);
        self.energy.charge_op(ssd_op_energy::read_4k());
        let mut ok = true;
        if let Some(f) = self.faults.as_mut() {
            let life = self.ftl.wear().life_used();
            if f.ssd_read(at, lpn, life) {
                ok = false;
            }
        }
        self.tracer.emit(|| TraceEvent {
            at,
            kind: TraceKind::SsdRead {
                lpn,
                queued,
                service,
                ok,
            },
        });
        if !ok {
            return Err(SsdError::Uncorrectable { lpn });
        }
        Ok(done)
    }

    /// Reads `n` consecutive logical pages starting at `lpn`; channels
    /// overlap, so the completion is the latest channel finish.
    ///
    /// # Errors
    ///
    /// Returns [`SsdError::Unmapped`] if any page holds no data.
    pub fn read_span(&mut self, at: Ns, lpn: u64, n: u32) -> Result<Ns, SsdError> {
        let mut done = at;
        for i in 0..n as u64 {
            done = done.max(self.read(at, lpn + i)?);
        }
        Ok(done)
    }

    /// Writes logical page `lpn`, arriving at `at`. Returns the completion
    /// instant. Any garbage collection the write triggers is charged
    /// synchronously.
    ///
    /// # Errors
    ///
    /// Returns [`SsdError::Full`] or [`SsdError::WornOut`] when space cannot
    /// be allocated.
    pub fn write(&mut self, at: Ns, lpn: u64) -> Result<Ns, SsdError> {
        if let Some(f) = self.faults.as_mut() {
            // A dead device refuses the program before the FTL moves: the
            // mapping must not advance on a write the flash never took.
            if f.ssd_program_refused(at, lpn) {
                return Err(SsdError::DeviceDead);
            }
        }
        let ops = self.ftl.write(lpn)?;
        let (queued, service, done) = self.charge(at, &ops);
        self.stats.record_write(BLOCK_SIZE, queued, service);
        if let Some(f) = self.faults.as_mut() {
            // A fresh program clears any latent uncorrectable state.
            f.ssd_write(at, lpn);
        }
        self.tracer.emit(|| {
            let mut gc_reads = 0u32;
            let mut gc_programs = 0u32;
            let mut erases = 0u32;
            for op in &ops {
                match op {
                    FlashOp::Read { .. } => gc_reads += 1,
                    FlashOp::Program { host: false, .. } => gc_programs += 1,
                    FlashOp::Program { host: true, .. } => {}
                    FlashOp::Erase { .. } => erases += 1,
                }
            }
            TraceEvent {
                at,
                kind: TraceKind::SsdProgram {
                    lpn,
                    queued,
                    service,
                    gc_reads,
                    gc_programs,
                    erases,
                },
            }
        });
        for op in &ops {
            match op {
                FlashOp::Read { .. } => self.energy.charge_op(ssd_op_energy::read_4k()),
                FlashOp::Program { .. } => self.energy.charge_op(ssd_op_energy::write_4k()),
                FlashOp::Erase { .. } => {
                    // Erase energy folded into the program-side figure; the
                    // active-power term covers the stall.
                }
            }
        }
        Ok(done)
    }

    /// Writes `n` consecutive logical pages starting at `lpn`.
    ///
    /// # Errors
    ///
    /// Returns the first allocation error encountered.
    pub fn write_span(&mut self, at: Ns, lpn: u64, n: u32) -> Result<Ns, SsdError> {
        let mut done = at;
        for i in 0..n as u64 {
            done = done.max(self.write(at, lpn + i)?);
        }
        Ok(done)
    }

    /// Drops the mapping for `lpn` (cache eviction); frees the page for GC.
    pub fn trim(&mut self, lpn: u64) {
        let mapped = self.ftl.map_read(lpn).is_some();
        self.ftl.trim(lpn);
        if let Some(f) = self.faults.as_mut() {
            // The old physical page (and its bad bits) is gone.
            f.ssd_write(Ns::ZERO, lpn);
        }
        if mapped {
            self.tracer.emit(|| TraceEvent {
                at: Ns::ZERO,
                kind: TraceKind::SsdTrim { lpn },
            });
        }
    }

    /// Marks `lpn` as holding factory-loaded image data: readable, but not
    /// counted as host write traffic (it predates the measured run).
    ///
    /// # Errors
    ///
    /// Returns an allocation error if the device is out of space.
    pub fn prefill(&mut self, lpn: u64) -> Result<(), SsdError> {
        self.ftl.prefill(lpn)
    }

    /// Charges a sequence of physical ops to their channels. Ops on the same
    /// channel serialise; ops on different channels overlap. Returns
    /// (queue delay, summed service time, completion instant).
    ///
    /// Without a configured [`QueueConfig`](crate::queue::QueueConfig) this
    /// charges every op to its channel clock in emission order — the
    /// pre-queue model, bit for bit. With one, erases are deferred per
    /// channel (up to the queue depth) so host reads and programs overtake
    /// them; the accumulated erase debt is paid in one background burst when
    /// a channel's queue fills. Service totals (and therefore busy-time
    /// statistics) are identical either way — only completion instants move.
    fn charge(&mut self, at: Ns, ops: &[FlashOp]) -> (Ns, Ns, Ns) {
        let cfg = self.ftl.config().clone();
        let Some(qcfg) = cfg.queue else {
            let mut first_start: Option<Ns> = None;
            let mut service_total = Ns::ZERO;
            let mut done = at;
            for op in ops {
                let ch = op.channel(&cfg) as usize;
                let start = at.max(self.channel_busy[ch]);
                first_start.get_or_insert(start);
                let latency = op.latency(&cfg);
                self.channel_busy[ch] = start + latency;
                service_total += latency;
                done = done.max(self.channel_busy[ch]);
            }
            let queued = first_start.unwrap_or(at) - at;
            return (queued, service_total, done);
        };
        let mut first_start: Option<Ns> = None;
        let mut service_total = Ns::ZERO;
        let mut done = at;
        for op in ops {
            let ch = op.channel(&cfg) as usize;
            let latency = op.latency(&cfg);
            match *op {
                FlashOp::Erase { block } => {
                    // Queue the erase as channel debt instead of stalling
                    // the channel now; host traffic behind it overtakes.
                    self.deferred[ch] += latency;
                    self.deferred_count[ch] += 1;
                    self.deferred_at[ch].push(at);
                    service_total += latency;
                    let depth = self.deferred_count[ch];
                    self.stats.record_queue_admit(depth);
                    self.tracer.emit(|| TraceEvent {
                        at,
                        kind: TraceKind::QueueAdmit {
                            dev: 0,
                            lba: block as u64,
                            blocks: cfg.pages_per_block,
                            depth,
                        },
                    });
                    if depth >= qcfg.depth {
                        // The queue is full: pay the whole debt in one
                        // background burst on this channel.
                        let start = at.max(self.channel_busy[ch]);
                        self.channel_busy[ch] = start + self.deferred[ch];
                        let completion = self.channel_busy[ch];
                        for admitted in self.deferred_at[ch].drain(..) {
                            self.stats.record_queue_latency(completion - admitted);
                        }
                        self.deferred[ch] = Ns::ZERO;
                        self.deferred_count[ch] = 0;
                    }
                }
                FlashOp::Read { ppn } | FlashOp::Program { ppn, .. } => {
                    let jumped = self.deferred_count[ch];
                    if jumped > 0 {
                        // This op starts ahead of every erase queued on the
                        // channel — the reordering the queue exists for.
                        self.stats.record_queue_reorder();
                        self.tracer.emit(|| TraceEvent {
                            at,
                            kind: TraceKind::QueueReorder {
                                dev: 0,
                                lba: ppn,
                                jumped,
                            },
                        });
                    }
                    let start = at.max(self.channel_busy[ch]);
                    first_start.get_or_insert(start);
                    self.channel_busy[ch] = start + latency;
                    service_total += latency;
                    done = done.max(self.channel_busy[ch]);
                }
            }
        }
        let queued = first_start.unwrap_or(at) - at;
        (queued, service_total, done)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_ssd() -> Ssd {
        Ssd::new(SsdConfig::fusion_io(1 << 20)) // 1 MB = 256 pages
    }

    #[test]
    fn read_of_unmapped_page_errors() {
        let mut s = small_ssd();
        assert_eq!(s.read(Ns::ZERO, 0), Err(SsdError::Unmapped { lpn: 0 }));
    }

    #[test]
    fn write_then_read_latencies() {
        let mut s = small_ssd();
        let w = s.write(Ns::ZERO, 0).unwrap();
        assert_eq!(w, Ns::from_us(200));
        let r = s.read(w, 0).unwrap();
        assert_eq!(r - w, Ns::from_us(25));
    }

    #[test]
    fn channel_parallelism_overlaps_span_reads() {
        let mut s = small_ssd();
        // Pages land on distinct channels via round-robin allocation.
        s.write_span(Ns::ZERO, 0, 8).unwrap();
        let t0 = Ns::from_ms(10);
        let done = s.read_span(t0, 0, 8).unwrap();
        // 8 reads over 8 channels: far less than 8 serial reads.
        assert!(done - t0 < Ns::from_us(25) * 8);
    }

    #[test]
    fn same_channel_ops_serialise() {
        let mut s = small_ssd();
        s.write(Ns::ZERO, 0).unwrap();
        let t0 = Ns::from_ms(1);
        let r1 = s.read(t0, 0).unwrap();
        let r2 = s.read(t0, 0).unwrap();
        assert_eq!(r2 - r1, Ns::from_us(25));
        assert!(s.stats().queued > Ns::ZERO);
    }

    /// An SSD with tight spare space so GC pressure is easy to create.
    fn tight_ssd() -> Ssd {
        let cfg = SsdConfig {
            capacity_pages: 160,
            flash: flash::FlashConfig {
                channels: 4,
                pages_per_block: 8,
                blocks: 32,
                endurance: 100_000,
                ..flash::FlashConfig::slc(1, 0.0)
            },
        };
        Ssd::new(cfg)
    }

    /// Deterministic xorshift for uniform-random overwrite patterns.
    fn xorshift(state: &mut u64) -> u64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        *state
    }

    #[test]
    fn sustained_random_writes_amplify() {
        let mut s = tight_ssd();
        for lpn in 0..150u64 {
            s.write(Ns::ZERO, lpn).unwrap();
        }
        // Uniform random overwrites mix page ages within blocks, so GC must
        // relocate live pages.
        let mut rng = 42u64;
        for step in 0..3_000u64 {
            s.write(Ns::from_us(step), xorshift(&mut rng) % 150)
                .unwrap();
        }
        assert!(s.gc_stats().write_amplification() > 1.0);
        assert!(s.wear().total_erases() > 0);
    }

    #[test]
    fn trim_then_read_errors() {
        let mut s = small_ssd();
        s.write(Ns::ZERO, 9).unwrap();
        s.trim(9);
        assert!(matches!(
            s.read(Ns::from_ms(1), 9),
            Err(SsdError::Unmapped { .. })
        ));
    }

    #[test]
    fn stats_count_host_ops_only() {
        let mut s = tight_ssd();
        let mut host_writes = 0u64;
        for lpn in 0..150u64 {
            s.write(Ns::ZERO, lpn).unwrap();
            host_writes += 1;
        }
        let mut rng = 7u64;
        for step in 0..3_000u64 {
            s.write(Ns::from_us(step), xorshift(&mut rng) % 150)
                .unwrap();
            host_writes += 1;
        }
        // Host-level writes exactly equal the requests issued, regardless of
        // internal GC traffic (Table 6 semantics).
        assert_eq!(s.stats().writes, host_writes);
        assert!(s.gc_stats().gc_programs > 0);
    }

    #[test]
    fn energy_includes_op_charges() {
        let mut s = small_ssd();
        s.write(Ns::ZERO, 0).unwrap();
        s.read(Ns::from_ms(1), 0).unwrap();
        let e = s.energy(Ns::from_ms(1)).as_uj();
        // At least the per-op energies (idle term is tiny over 1 ms).
        assert!(e >= 76.1 + 9.5);
    }

    #[test]
    fn prefill_is_readable_but_uncounted() {
        let mut s = small_ssd();
        s.prefill(5).unwrap();
        s.prefill(5).unwrap(); // idempotent
        assert!(s.is_mapped(5));
        assert_eq!(s.stats().writes, 0, "factory image is not host traffic");
        assert!(s.read(Ns::ZERO, 5).is_ok());
        assert_eq!(s.stats().reads, 1);
    }

    #[test]
    fn error_display_is_meaningful() {
        assert_eq!(
            SsdError::Unmapped { lpn: 7 }.to_string(),
            "read of unmapped logical page 7"
        );
        assert_eq!(SsdError::Full.to_string(), "no reclaimable flash space");
        assert!(SsdError::Uncorrectable { lpn: 3 }
            .to_string()
            .contains("uncorrectable"));
    }

    /// The tight SSD with a per-channel erase queue of the given depth.
    fn tight_ssd_with_queue(depth: u32) -> Ssd {
        let mut cfg = SsdConfig {
            capacity_pages: 160,
            flash: flash::FlashConfig {
                channels: 4,
                pages_per_block: 8,
                blocks: 32,
                endurance: 100_000,
                ..flash::FlashConfig::slc(1, 0.0)
            },
        };
        cfg.flash.queue = Some(crate::queue::QueueConfig::depth(depth));
        Ssd::new(cfg)
    }

    /// Replays the GC-heavy overwrite workload and returns the last
    /// completion instant plus total completion slack across all writes.
    fn grind(s: &mut Ssd) -> Ns {
        for lpn in 0..150u64 {
            s.write(Ns::ZERO, lpn).unwrap();
        }
        let mut rng = 42u64;
        let mut last = Ns::ZERO;
        for step in 0..3_000u64 {
            let at = Ns::from_us(step);
            last = last.max(s.write(at, xorshift(&mut rng) % 150).unwrap());
        }
        last
    }

    #[test]
    fn queued_erases_defer_and_host_ops_overtake() {
        let mut base = tight_ssd();
        let base_last = grind(&mut base);
        let mut q = tight_ssd_with_queue(4);
        let q_last = grind(&mut q);
        assert!(q.stats().queue_admits > 0, "GC erases should be queued");
        assert!(q.stats().queue_reorders > 0, "host ops should overtake");
        assert!(q.stats().queue_depth_max <= 4, "debt flushed at depth");
        // Same physical work either way — only completion instants move.
        assert_eq!(q.stats().busy, base.stats().busy);
        assert_eq!(q.stats().writes, base.stats().writes);
        assert!(
            q_last <= base_last,
            "deferring erases must not slow the host path: {q_last:?} vs {base_last:?}"
        );
        assert!(q.stats().queued < base.stats().queued);
    }

    #[test]
    fn unqueued_ssd_reports_no_queue_activity() {
        let mut s = tight_ssd();
        grind(&mut s);
        assert_eq!(s.stats().queue_admits, 0);
        assert_eq!(s.stats().queue_reorders, 0);
    }

    #[test]
    fn uncorrectable_read_heals_on_reprogram() {
        use crate::fault::{FaultInjector, FaultPlan, FaultTrigger};
        let mut s = small_ssd();
        s.install_faults(FaultInjector::new(
            FaultPlan::seeded(1).trigger(FaultTrigger::SsdRead { op: 0 }),
            0,
        ));
        s.write(Ns::ZERO, 4).unwrap();
        assert_eq!(
            s.read(Ns::from_ms(1), 4),
            Err(SsdError::Uncorrectable { lpn: 4 })
        );
        // Stays bad until reprogrammed...
        assert!(s.read(Ns::from_ms(2), 4).is_err());
        s.write(Ns::from_ms(3), 4).unwrap();
        assert!(s.read(Ns::from_ms(4), 4).is_ok());
        assert_eq!(s.fault_stats().unwrap().ssd_read_errors, 2);
        assert_eq!(s.fault_stats().unwrap().sectors_remapped, 1);
    }
}
