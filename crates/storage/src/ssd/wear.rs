//! Flash wear tracking.
//!
//! The paper's Table 6 motivates I-CASH partly by reduced SSD wear: fewer
//! random writes means fewer erases means longer device life. This module
//! counts per-block erases and summarises wear the way an SSD SMART report
//! would.

use serde::{Deserialize, Serialize};

/// Per-erase-block wear counters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WearTracker {
    erase_counts: Vec<u32>,
    endurance: u32,
    bad_blocks: u32,
}

impl WearTracker {
    /// Creates a tracker for `blocks` erase blocks with the given endurance.
    ///
    /// # Panics
    ///
    /// Panics if `endurance` is zero.
    pub fn new(blocks: u32, endurance: u32) -> Self {
        assert!(endurance > 0, "endurance must be nonzero");
        WearTracker {
            erase_counts: vec![0; blocks as usize],
            endurance,
            bad_blocks: 0,
        }
    }

    /// Records an erase of `block`. Returns `true` if the block just reached
    /// its endurance limit and must be retired.
    ///
    /// # Panics
    ///
    /// Panics if `block` is out of range.
    pub fn record_erase(&mut self, block: u32) -> bool {
        let c = &mut self.erase_counts[block as usize];
        *c += 1;
        if *c == self.endurance {
            self.bad_blocks += 1;
            true
        } else {
            false
        }
    }

    /// Erase count of one block.
    pub fn erases_of(&self, block: u32) -> u32 {
        self.erase_counts[block as usize]
    }

    /// Total erases across all blocks.
    pub fn total_erases(&self) -> u64 {
        self.erase_counts.iter().map(|&c| c as u64).sum()
    }

    /// Highest per-block erase count.
    pub fn max_erases(&self) -> u32 {
        self.erase_counts.iter().copied().max().unwrap_or(0)
    }

    /// Mean per-block erase count.
    pub fn mean_erases(&self) -> f64 {
        if self.erase_counts.is_empty() {
            0.0
        } else {
            self.total_erases() as f64 / self.erase_counts.len() as f64
        }
    }

    /// Blocks retired at the endurance limit.
    pub fn bad_blocks(&self) -> u32 {
        self.bad_blocks
    }

    /// Fraction of total endurance consumed, 0.0 (new) to 1.0 (worn out),
    /// using the mean erase count as a device-life proxy.
    pub fn life_used(&self) -> f64 {
        (self.mean_erases() / self.endurance as f64).min(1.0)
    }

    /// Wear-leveling evenness: max / mean erase count (1.0 = perfectly even).
    /// Returns 1.0 when nothing has been erased yet.
    pub fn imbalance(&self) -> f64 {
        let mean = self.mean_erases();
        if mean == 0.0 {
            1.0
        } else {
            self.max_erases() as f64 / mean
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erases_accumulate() {
        let mut w = WearTracker::new(4, 10);
        assert!(!w.record_erase(0));
        assert!(!w.record_erase(0));
        assert!(!w.record_erase(1));
        assert_eq!(w.erases_of(0), 2);
        assert_eq!(w.total_erases(), 3);
        assert_eq!(w.max_erases(), 2);
        assert!((w.mean_erases() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn endurance_limit_retires_block() {
        let mut w = WearTracker::new(2, 3);
        assert!(!w.record_erase(0));
        assert!(!w.record_erase(0));
        assert!(w.record_erase(0));
        assert_eq!(w.bad_blocks(), 1);
        // Further erases past the limit do not re-retire.
        assert!(!w.record_erase(0));
        assert_eq!(w.bad_blocks(), 1);
    }

    #[test]
    fn life_and_imbalance() {
        let mut w = WearTracker::new(2, 100);
        for _ in 0..50 {
            w.record_erase(0);
        }
        assert!((w.life_used() - 0.25).abs() < 1e-12);
        assert!((w.imbalance() - 2.0).abs() < 1e-12);
        let fresh = WearTracker::new(2, 100);
        assert_eq!(fresh.imbalance(), 1.0);
        assert_eq!(fresh.life_used(), 0.0);
    }
}
