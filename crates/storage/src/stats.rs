//! Per-device operation statistics.

use crate::histogram::LatencyHistogram;
use crate::time::Ns;
use serde::{Deserialize, Serialize};

/// Operation counters and busy-time accounting for one device.
///
/// Every device model updates one of these as it services operations; the
/// evaluation harness reads them to reproduce Table 6 (SSD write counts) and
/// the utilization figures.
#[derive(Debug, Default, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeviceStats {
    /// Completed read operations.
    pub reads: u64,
    /// Completed write (program) operations.
    pub writes: u64,
    /// Erase operations (flash only).
    pub erases: u64,
    /// Bytes transferred by reads.
    pub read_bytes: u64,
    /// Bytes transferred by writes.
    pub write_bytes: u64,
    /// Total time the device spent servicing operations.
    pub busy: Ns,
    /// Total time requests waited in the device queue before service began.
    pub queued: Ns,
    /// Commands admitted through the device command queue (zero while no
    /// queue is configured — the default).
    #[serde(default)]
    pub queue_admits: u64,
    /// Highest command-queue occupancy observed at admission.
    #[serde(default)]
    pub queue_depth_max: u64,
    /// Commands dispatched out of arrival order by the queue scheduler.
    #[serde(default)]
    pub queue_reorders: u64,
    /// Commands absorbed into an adjacent neighbor's sequential transfer.
    #[serde(default)]
    pub queue_coalesced: u64,
    /// Tagged-command latency through this device's queue: admission to
    /// completion, one sample per dispatched command. `None` while no queue
    /// is configured (the default), so queue-free reports stay byte-
    /// identical to the pre-queue serialization.
    #[serde(default)]
    pub queue_latency: Option<LatencyHistogram>,
}

impl DeviceStats {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a read of `bytes` that waited `queued` and took `service`.
    pub fn record_read(&mut self, bytes: usize, queued: Ns, service: Ns) {
        self.reads += 1;
        self.read_bytes += bytes as u64;
        self.queued += queued;
        self.busy += service;
    }

    /// Records a write of `bytes` that waited `queued` and took `service`.
    pub fn record_write(&mut self, bytes: usize, queued: Ns, service: Ns) {
        self.writes += 1;
        self.write_bytes += bytes as u64;
        self.queued += queued;
        self.busy += service;
    }

    /// Records an erase that took `service`.
    pub fn record_erase(&mut self, service: Ns) {
        self.erases += 1;
        self.busy += service;
    }

    /// Records a command-queue admission that left `depth` commands queued.
    pub fn record_queue_admit(&mut self, depth: u32) {
        self.queue_admits += 1;
        self.queue_depth_max = self.queue_depth_max.max(depth as u64);
    }

    /// Records an out-of-arrival-order dispatch.
    pub fn record_queue_reorder(&mut self) {
        self.queue_reorders += 1;
    }

    /// Records `commands` being coalesced into a neighbor's transfer.
    pub fn record_queue_coalesce(&mut self, commands: u32) {
        self.queue_coalesced += commands as u64;
    }

    /// Records one tagged command's admission-to-completion latency through
    /// the device queue, materializing the histogram on first use.
    pub fn record_queue_latency(&mut self, latency: Ns) {
        self.queue_latency
            .get_or_insert_with(LatencyHistogram::new)
            .record(latency);
    }

    /// Total completed operations (reads + writes + erases).
    pub fn ops(&self) -> u64 {
        self.reads + self.writes + self.erases
    }

    /// Device utilization over an elapsed span (clamped to 1.0).
    pub fn utilization(&self, elapsed: Ns) -> f64 {
        if elapsed == Ns::ZERO {
            0.0
        } else {
            (self.busy.as_ns() as f64 / elapsed.as_ns() as f64).min(1.0)
        }
    }

    /// Adds another device's counters into this one (for aggregating arrays).
    pub fn merge(&mut self, other: &DeviceStats) {
        self.reads += other.reads;
        self.writes += other.writes;
        self.erases += other.erases;
        self.read_bytes += other.read_bytes;
        self.write_bytes += other.write_bytes;
        self.busy += other.busy;
        self.queued += other.queued;
        self.queue_admits += other.queue_admits;
        self.queue_depth_max = self.queue_depth_max.max(other.queue_depth_max);
        self.queue_reorders += other.queue_reorders;
        self.queue_coalesced += other.queue_coalesced;
        if let Some(theirs) = &other.queue_latency {
            self.queue_latency
                .get_or_insert_with(LatencyHistogram::new)
                .merge(theirs);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut s = DeviceStats::new();
        s.record_read(4096, Ns::from_us(1), Ns::from_us(25));
        s.record_write(4096, Ns::ZERO, Ns::from_us(200));
        s.record_erase(Ns::from_ms(2));
        assert_eq!(s.ops(), 3);
        assert_eq!(s.read_bytes, 4096);
        assert_eq!(s.write_bytes, 4096);
        assert_eq!(s.busy, Ns::from_us(25) + Ns::from_us(200) + Ns::from_ms(2));
    }

    #[test]
    fn utilization_clamps() {
        let mut s = DeviceStats::new();
        s.record_read(4096, Ns::ZERO, Ns::from_ms(10));
        assert!(s.utilization(Ns::from_ms(5)) <= 1.0);
        assert!((s.utilization(Ns::from_ms(20)) - 0.5).abs() < 1e-9);
        assert_eq!(s.utilization(Ns::ZERO), 0.0);
    }

    #[test]
    fn merge_sums_everything() {
        let mut a = DeviceStats::new();
        a.record_read(100, Ns::ZERO, Ns::from_us(1));
        let mut b = DeviceStats::new();
        b.record_write(200, Ns::from_us(2), Ns::from_us(3));
        a.merge(&b);
        assert_eq!(a.reads, 1);
        assert_eq!(a.writes, 1);
        assert_eq!(a.read_bytes, 100);
        assert_eq!(a.write_bytes, 200);
        assert_eq!(a.queued, Ns::from_us(2));
    }

    #[test]
    fn queue_counters_accumulate_and_merge() {
        let mut a = DeviceStats::new();
        a.record_queue_admit(3);
        a.record_queue_admit(7);
        a.record_queue_reorder();
        a.record_queue_coalesce(2);
        assert_eq!(a.queue_admits, 2);
        assert_eq!(a.queue_depth_max, 7);
        let mut b = DeviceStats::new();
        b.record_queue_admit(5);
        b.record_queue_coalesce(4);
        a.merge(&b);
        assert_eq!(a.queue_admits, 3);
        assert_eq!(a.queue_depth_max, 7, "high-water merges as max");
        assert_eq!(a.queue_reorders, 1);
        assert_eq!(a.queue_coalesced, 6);
    }

    #[test]
    fn queue_latency_is_lazy_and_merges() {
        let mut a = DeviceStats::new();
        assert!(
            a.queue_latency.is_none(),
            "queue-free stats stay histogram-free"
        );
        a.record_queue_latency(Ns::from_us(10));
        let mut b = DeviceStats::new();
        b.record_queue_latency(Ns::from_us(30));
        a.merge(&b);
        let h = a.queue_latency.expect("merged histogram");
        assert_eq!(h.count(), 2);
        assert_eq!(h.mean(), Ns::from_us(20));
        // Merging a histogram-free side leaves the other side intact.
        let mut c = DeviceStats::new();
        c.merge(&DeviceStats::new());
        assert!(c.queue_latency.is_none());
    }
}
