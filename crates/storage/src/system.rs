//! The storage-system interface every architecture implements.
//!
//! I-CASH and the four baselines (pure SSD, RAID0, LRU SSD cache, dedup SSD
//! cache) all implement [`StorageSystem`], so the benchmark driver can run
//! identical workloads against each and compare the results the way the
//! paper's §5 does.

use crate::block::{BlockBuf, Lba};
use crate::cpu::CpuModel;
use crate::energy::MicroJoules;
use crate::fault::{FaultStats, HealthState};
use crate::pipeline::Ticket;
use crate::request::{Completion, Request};
use crate::ssd::ftl::GcStats;
use crate::stats::DeviceStats;
use crate::time::Ns;
use serde::{Deserialize, Serialize};

/// Source of the *initial* (pre-run) content of the backing data set.
///
/// The paper's prototype ran over a pre-populated virtual disk image. Here
/// the workload provides that image lazily: a storage system asks the
/// content source for a block's original bytes the first time it needs them
/// (a read miss of a never-written block). Blocks written during the run are
/// the system's own responsibility.
pub trait ContentSource {
    /// The original content of `lba` before the run started.
    fn initial_content(&self, lba: Lba) -> BlockBuf;
}

/// A content source whose every block is zeroes (tests and timing-only runs).
#[derive(Debug, Default, Clone, Copy)]
pub struct ZeroSource;

impl ContentSource for ZeroSource {
    fn initial_content(&self, _lba: Lba) -> BlockBuf {
        BlockBuf::zeroed()
    }
}

/// Per-request execution context handed to [`StorageSystem::submit`].
#[allow(missing_debug_implementations)]
pub struct IoCtx<'a> {
    /// The initial data-set image.
    pub backing: &'a dyn ContentSource,
    /// The shared CPU account (signatures, codec work, hashing...).
    pub cpu: &'a mut CpuModel,
    /// Whether reads must materialise and return their data (integrity
    /// tests). Timing-only runs leave this off to keep memory flat.
    pub collect_data: bool,
}

impl<'a> IoCtx<'a> {
    /// Creates a timing-only context.
    pub fn new(backing: &'a dyn ContentSource, cpu: &'a mut CpuModel) -> Self {
        IoCtx {
            backing,
            cpu,
            collect_data: false,
        }
    }

    /// Creates a context that materialises read data for verification.
    pub fn verifying(backing: &'a dyn ContentSource, cpu: &'a mut CpuModel) -> Self {
        IoCtx {
            backing,
            cpu,
            collect_data: true,
        }
    }
}

/// Group-commit efficiency of a staged write pipeline: how many buffered
/// entries each sequential log append amortized, and how deep the staging
/// buffer grew. All zero for write-through architectures.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GroupCommitReport {
    /// Group commits performed (one sequential append each).
    pub commits: u64,
    /// Staged entries drained by those commits.
    pub entries: u64,
    /// Encoded payload bytes drained by those commits.
    pub bytes: u64,
    /// High-water mark of buffered staging bytes.
    pub staged_high_water: u64,
}

impl GroupCommitReport {
    /// Entries amortized per commit (0 when no commits ran).
    pub fn entries_per_commit(&self) -> f64 {
        if self.commits == 0 {
            0.0
        } else {
            self.entries as f64 / self.commits as f64
        }
    }

    /// Payload bytes amortized per commit (0 when no commits ran).
    pub fn bytes_per_commit(&self) -> f64 {
        if self.commits == 0 {
            0.0
        } else {
            self.bytes as f64 / self.commits as f64
        }
    }

    /// Folds another shard's pipeline counters into this one. Counters add;
    /// the staging high-water mark is each shard's private buffer, so the
    /// merged figure is the worst single shard.
    pub fn merge(&mut self, other: &GroupCommitReport) {
        self.commits += other.commits;
        self.entries += other.entries;
        self.bytes += other.bytes;
        self.staged_high_water = self.staged_high_water.max(other.staged_high_water);
    }
}

/// Device-health and self-healing figures of one run, present only when the
/// health subsystem was enabled.
#[derive(Debug, Default, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HealthReport {
    /// Final SSD health state.
    pub ssd: HealthState,
    /// Final HDD health state.
    pub hdd: HealthState,
    /// Health-state transitions taken across every device.
    pub transitions: u64,
    /// SSD slots repopulated by the online rebuild so far.
    pub rebuild_done: u64,
    /// Slots the rebuild set out to restore (0 = no rebuild ran).
    pub rebuild_total: u64,
    /// Rate-limited rebuild chunks processed.
    pub rebuild_chunks: u64,
    /// Reads served from HDD home copies while the SSD was down.
    pub degraded_reads: u64,
    /// Writes absorbed by the HDD-only degraded path.
    pub degraded_writes: u64,
    /// Writes refused admission by staging backpressure.
    pub busy_rejections: u64,
    /// Exponential-backoff retries of faulted device ops.
    pub retry_backoffs: u64,
}

impl HealthReport {
    /// Folds another shard's health figures into this one: states take the
    /// worst shard (one sick shard makes the merged device sick), counters
    /// add.
    pub fn merge(&mut self, other: &HealthReport) {
        self.ssd = self.ssd.worst(other.ssd);
        self.hdd = self.hdd.worst(other.hdd);
        self.transitions += other.transitions;
        self.rebuild_done += other.rebuild_done;
        self.rebuild_total += other.rebuild_total;
        self.rebuild_chunks += other.rebuild_chunks;
        self.degraded_reads += other.degraded_reads;
        self.degraded_writes += other.degraded_writes;
        self.busy_rejections += other.busy_rejections;
        self.retry_backoffs += other.retry_backoffs;
    }
}

/// End-of-run report of one storage system, aggregated by the harness.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct SystemReport {
    /// Architecture name as shown in the paper's figures.
    pub name: String,
    /// SSD host-level stats, if the architecture has an SSD.
    pub ssd: Option<DeviceStats>,
    /// Aggregated HDD stats, if the architecture has disks.
    pub hdd: Option<DeviceStats>,
    /// SSD garbage-collection stats, if applicable.
    pub gc: Option<GcStats>,
    /// Fraction of SSD endurance consumed, if applicable.
    pub ssd_life_used: Option<f64>,
    /// Energy drawn by the storage devices over the run (CPU energy is added
    /// by the driver, which owns the CPU model).
    pub device_energy: MicroJoules,
    /// Injected-fault counters merged over every device (all zero when the
    /// run carried no fault plan).
    pub faults: FaultStats,
    /// Group-commit efficiency, if the architecture stages writes.
    pub group_commit: Option<GroupCommitReport>,
    /// Device-health figures, if the health subsystem was enabled.
    #[serde(default)]
    pub health: Option<HealthReport>,
}

impl SystemReport {
    /// Folds another shard's report into this one, producing the figures a
    /// single system over the same union of devices would have reported:
    /// device stats, energy and fault counters add; SSD life used is the
    /// worst shard (wear-out is per device, not amortizable); optional
    /// sections appear as soon as any shard has them. The name is kept from
    /// `self` — shards of one architecture all share it.
    pub fn merge(&mut self, other: &SystemReport) {
        fn merge_opt<T: Clone>(into: &mut Option<T>, from: &Option<T>, fold: impl Fn(&mut T, &T)) {
            match (into.as_mut(), from) {
                (Some(a), Some(b)) => fold(a, b),
                (None, Some(b)) => *into = Some(b.clone()),
                _ => {}
            }
        }
        merge_opt(&mut self.ssd, &other.ssd, |a, b| a.merge(b));
        merge_opt(&mut self.hdd, &other.hdd, |a, b| a.merge(b));
        merge_opt(&mut self.gc, &other.gc, |a, b| a.merge(b));
        merge_opt(&mut self.ssd_life_used, &other.ssd_life_used, |a, b| {
            *a = a.max(*b)
        });
        merge_opt(&mut self.group_commit, &other.group_commit, |a, b| {
            a.merge(b)
        });
        merge_opt(&mut self.health, &other.health, |a, b| a.merge(b));
        self.device_energy.add(other.device_energy);
        self.faults.merge(&other.faults);
    }
}

/// A complete disk I/O architecture under test.
///
/// Implementations process block requests against their simulated devices
/// and return the completion instant (and data when requested). The trait is
/// object-safe: the benchmark driver holds systems as `Box<dyn
/// StorageSystem>`. It also requires [`Send`], so the harness can run each
/// (system × workload) benchmark cell on its own worker thread — every
/// system owns its entire simulated world, so there is no shared state to
/// protect.
pub trait StorageSystem: Send {
    /// Architecture name as shown in the paper's figures ("I-CASH",
    /// "FusionIO", "RAID0", "LRU", "Dedup").
    fn name(&self) -> &str;

    /// Processes one request arriving at `req.at` and returns its
    /// completion. Implementations must be deterministic functions of the
    /// request stream.
    fn submit(&mut self, req: &Request, ctx: &mut IoCtx<'_>) -> Completion;

    /// Flushes buffered state (e.g. I-CASH's dirty delta blocks) as if at a
    /// clean shutdown; returns when the flush completes.
    fn flush(&mut self, now: Ns, ctx: &mut IoCtx<'_>) -> Ns {
        let _ = ctx;
        now
    }

    /// The flush ticket covering the most recently accepted write (the
    /// write-acceptance watermark). Write-through architectures that never
    /// buffer may keep the default: [`Ticket::ZERO`] for both watermarks
    /// means "nothing is ever pending".
    fn write_ticket(&self) -> Ticket {
        Ticket::ZERO
    }

    /// The durability watermark: every write whose ticket is at or below
    /// it has reached stable media. Defaults to the write watermark
    /// (write-through: accepted means durable).
    fn flushed_ticket(&self) -> Ticket {
        self.write_ticket()
    }

    /// Durability barrier for one ticket: returns once every write with a
    /// ticket at or below `ticket` is on stable media, flushing buffered
    /// state if it must. The default covers write-through systems: if the
    /// ticket is already durable this is free, otherwise it falls back to
    /// a full [`flush`](StorageSystem::flush).
    fn await_flush(&mut self, ticket: Ticket, now: Ns, ctx: &mut IoCtx<'_>) -> Ns {
        if ticket <= self.flushed_ticket() {
            now
        } else {
            self.flush(now, ctx)
        }
    }

    /// Full durability barrier: every write accepted so far reaches stable
    /// media.
    fn sync(&mut self, now: Ns, ctx: &mut IoCtx<'_>) -> Ns {
        let ticket = self.write_ticket();
        self.await_flush(ticket, now, ctx)
    }

    /// Offline image preparation before the measured run, given the address
    /// universe as `(vm id, blocks)` spans. The paper's prototype derives
    /// deltas and installs reference blocks when virtual-machine images are
    /// *created* (§3.2), long before any benchmark starts, so this charges
    /// no virtual time. Default: nothing to prepare.
    fn preload(&mut self, universe: &[(u8, u64)], ctx: &mut IoCtx<'_>) {
        let _ = (universe, ctx);
    }

    /// Installs a [`Tracer`](crate::trace::Tracer) receiving the system's
    /// structured event stream. Implementations forward it to their
    /// [`DeviceArray`](crate::array::DeviceArray) (and keep a copy for
    /// controller-level events). Default: tracing unsupported, dropped.
    fn set_tracer(&mut self, tracer: crate::trace::Tracer) {
        let _ = tracer;
    }

    /// End-of-run statistics for the report tables.
    fn report(&self, elapsed: Ns) -> SystemReport;
}

/// Boxed systems forward every method (including overridden defaults) to
/// the inner implementation, so generic containers like
/// [`ShardRouter`](crate::shard::ShardRouter) can hold `Box<dyn
/// StorageSystem>` shards without losing behaviour.
impl<T: StorageSystem + ?Sized> StorageSystem for Box<T> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn submit(&mut self, req: &Request, ctx: &mut IoCtx<'_>) -> Completion {
        (**self).submit(req, ctx)
    }

    fn flush(&mut self, now: Ns, ctx: &mut IoCtx<'_>) -> Ns {
        (**self).flush(now, ctx)
    }

    fn write_ticket(&self) -> Ticket {
        (**self).write_ticket()
    }

    fn flushed_ticket(&self) -> Ticket {
        (**self).flushed_ticket()
    }

    fn await_flush(&mut self, ticket: Ticket, now: Ns, ctx: &mut IoCtx<'_>) -> Ns {
        (**self).await_flush(ticket, now, ctx)
    }

    fn sync(&mut self, now: Ns, ctx: &mut IoCtx<'_>) -> Ns {
        (**self).sync(now, ctx)
    }

    fn preload(&mut self, universe: &[(u8, u64)], ctx: &mut IoCtx<'_>) {
        (**self).preload(universe, ctx)
    }

    fn set_tracer(&mut self, tracer: crate::trace::Tracer) {
        (**self).set_tracer(tracer)
    }

    fn report(&self, elapsed: Ns) -> SystemReport {
        (**self).report(elapsed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::BLOCK_SIZE;
    use crate::request::Op;

    /// A trivial in-memory system used to exercise the trait contract.
    struct RamOnly {
        map: std::collections::HashMap<Lba, BlockBuf>,
    }

    impl StorageSystem for RamOnly {
        fn name(&self) -> &str {
            "RamOnly"
        }

        fn submit(&mut self, req: &Request, ctx: &mut IoCtx<'_>) -> Completion {
            let done = req.at + Ns::from_us(1) * req.blocks as u64;
            match req.op {
                Op::Write => {
                    for (lba, buf) in req.lbas().zip(req.payload.iter()) {
                        self.map.insert(lba, buf.clone());
                    }
                    Completion::at(done)
                }
                Op::Read => {
                    if !ctx.collect_data {
                        return Completion::at(done);
                    }
                    let data = req
                        .lbas()
                        .map(|lba| {
                            self.map
                                .get(&lba)
                                .cloned()
                                .unwrap_or_else(|| ctx.backing.initial_content(lba))
                        })
                        .collect();
                    Completion::with_data(done, data)
                }
            }
        }

        fn report(&self, _elapsed: Ns) -> SystemReport {
            SystemReport {
                name: self.name().to_string(),
                ..SystemReport::default()
            }
        }
    }

    #[test]
    fn trait_is_object_safe_and_roundtrips() {
        let mut sys: Box<dyn StorageSystem> = Box::new(RamOnly {
            map: Default::default(),
        });
        let mut cpu = CpuModel::xeon();
        let backing = ZeroSource;
        let mut ctx = IoCtx::verifying(&backing, &mut cpu);

        let w = Request::write(Lba::new(4), Ns::ZERO, BlockBuf::filled(0xEE));
        let done = sys.submit(&w, &mut ctx).finished;

        let r = Request::read(Lba::new(4), done);
        let c = sys.submit(&r, &mut ctx);
        assert_eq!(c.data[0], BlockBuf::filled(0xEE));

        // Unwritten blocks come from the backing image.
        let r2 = Request::read(Lba::new(99), c.finished);
        let c2 = sys.submit(&r2, &mut ctx);
        assert_eq!(c2.data[0], BlockBuf::zeroed());
        assert_eq!(c2.data[0].as_slice().len(), BLOCK_SIZE);
    }

    #[test]
    fn default_flush_is_a_noop() {
        let mut sys = RamOnly {
            map: Default::default(),
        };
        let mut cpu = CpuModel::xeon();
        let backing = ZeroSource;
        let mut ctx = IoCtx::new(&backing, &mut cpu);
        assert_eq!(sys.flush(Ns::from_ms(3), &mut ctx), Ns::from_ms(3));
    }
}
