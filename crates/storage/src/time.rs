//! Virtual time for the simulation substrate.
//!
//! Everything in this workspace runs on *virtual* nanoseconds: device models
//! advance a [`Ns`] timestamp, and nothing ever consults the wall clock, so
//! simulations are deterministic and can be replayed bit-for-bit.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};
use serde::{Deserialize, Serialize};

/// A point in (or span of) virtual time, in nanoseconds.
///
/// `Ns` is deliberately a newtype rather than a bare `u64` so that byte
/// counts, op counts, and timestamps cannot be mixed up in device-model
/// arithmetic.
///
/// # Examples
///
/// ```
/// use icash_storage::time::Ns;
///
/// let seek = Ns::from_ms(4) + Ns::from_us(120);
/// assert_eq!(seek.as_ns(), 4_120_000);
/// assert!(seek > Ns::from_ms(4));
/// ```
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct Ns(u64);

impl Ns {
    /// The zero instant / empty duration.
    pub const ZERO: Ns = Ns(0);
    /// The maximum representable instant.
    pub const MAX: Ns = Ns(u64::MAX);

    /// Creates a value from raw nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        Ns(ns)
    }

    /// Creates a value from microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        Ns(us * 1_000)
    }

    /// Creates a value from milliseconds.
    #[inline]
    pub const fn from_ms(ms: u64) -> Self {
        Ns(ms * 1_000_000)
    }

    /// Creates a value from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        Ns(s * 1_000_000_000)
    }

    /// Creates a value from fractional microseconds, rounding to the nearest
    /// nanosecond. Negative inputs clamp to zero.
    #[inline]
    pub fn from_us_f64(us: f64) -> Self {
        Ns((us * 1_000.0).max(0.0).round() as u64)
    }

    /// Raw nanosecond count.
    #[inline]
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// This span expressed in microseconds (lossy).
    #[inline]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// This span expressed in milliseconds (lossy).
    #[inline]
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// This span expressed in seconds (lossy).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Saturating subtraction: `self - rhs`, or zero if `rhs` is later.
    #[inline]
    pub fn saturating_sub(self, rhs: Ns) -> Ns {
        Ns(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition.
    #[inline]
    pub fn checked_add(self, rhs: Ns) -> Option<Ns> {
        self.0.checked_add(rhs.0).map(Ns)
    }

    /// The later of two instants.
    #[inline]
    pub fn max(self, rhs: Ns) -> Ns {
        Ns(self.0.max(rhs.0))
    }

    /// The earlier of two instants.
    #[inline]
    pub fn min(self, rhs: Ns) -> Ns {
        Ns(self.0.min(rhs.0))
    }

    /// Scales a duration by a dimensionless factor, rounding to the nearest
    /// nanosecond. Negative factors clamp to zero.
    #[inline]
    pub fn scale(self, factor: f64) -> Ns {
        Ns((self.0 as f64 * factor).max(0.0).round() as u64)
    }
}

impl Add for Ns {
    type Output = Ns;
    #[inline]
    fn add(self, rhs: Ns) -> Ns {
        Ns(self.0 + rhs.0)
    }
}

impl AddAssign for Ns {
    #[inline]
    fn add_assign(&mut self, rhs: Ns) {
        self.0 += rhs.0;
    }
}

impl Sub for Ns {
    type Output = Ns;
    #[inline]
    fn sub(self, rhs: Ns) -> Ns {
        Ns(self.0 - rhs.0)
    }
}

impl SubAssign for Ns {
    #[inline]
    fn sub_assign(&mut self, rhs: Ns) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Ns {
    type Output = Ns;
    #[inline]
    fn mul(self, rhs: u64) -> Ns {
        Ns(self.0 * rhs)
    }
}

impl Div<u64> for Ns {
    type Output = Ns;
    #[inline]
    fn div(self, rhs: u64) -> Ns {
        Ns(self.0 / rhs)
    }
}

impl Sum for Ns {
    fn sum<I: Iterator<Item = Ns>>(iter: I) -> Ns {
        iter.fold(Ns::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Ns {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_ms_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.as_us_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

/// A monotonically advancing virtual clock.
///
/// The clock only moves forward; [`SimClock::advance_to`] with an earlier
/// instant is a no-op. Device models keep their own `busy_until` horizon and
/// use the clock as the request-arrival reference.
///
/// # Examples
///
/// ```
/// use icash_storage::time::{Ns, SimClock};
///
/// let mut clock = SimClock::new();
/// clock.advance(Ns::from_us(5));
/// clock.advance_to(Ns::from_us(3)); // ignored: earlier than now
/// assert_eq!(clock.now(), Ns::from_us(5));
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SimClock {
    now: Ns,
}

impl SimClock {
    /// Creates a clock at instant zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current virtual instant.
    #[inline]
    pub fn now(&self) -> Ns {
        self.now
    }

    /// Moves the clock forward by `delta`.
    #[inline]
    pub fn advance(&mut self, delta: Ns) {
        self.now += delta;
    }

    /// Moves the clock forward to `instant` if that is in the future.
    #[inline]
    pub fn advance_to(&mut self, instant: Ns) {
        self.now = self.now.max(instant);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_roundtrip() {
        assert_eq!(Ns::from_us(3).as_ns(), 3_000);
        assert_eq!(Ns::from_ms(2).as_ns(), 2_000_000);
        assert_eq!(Ns::from_secs(1).as_ns(), 1_000_000_000);
        assert_eq!(Ns::from_us_f64(1.5).as_ns(), 1_500);
    }

    #[test]
    fn from_us_f64_clamps_negative() {
        assert_eq!(Ns::from_us_f64(-4.0), Ns::ZERO);
    }

    #[test]
    fn arithmetic() {
        let a = Ns::from_us(10);
        let b = Ns::from_us(4);
        assert_eq!(a + b, Ns::from_us(14));
        assert_eq!(a - b, Ns::from_us(6));
        assert_eq!(a * 3, Ns::from_us(30));
        assert_eq!(a / 2, Ns::from_us(5));
        assert_eq!(b.saturating_sub(a), Ns::ZERO);
    }

    #[test]
    fn scale_rounds() {
        assert_eq!(Ns::from_ns(10).scale(0.25), Ns::from_ns(3));
        assert_eq!(Ns::from_ns(10).scale(-1.0), Ns::ZERO);
    }

    #[test]
    fn sum_of_spans() {
        let total: Ns = [Ns::from_us(1), Ns::from_us(2), Ns::from_us(3)]
            .into_iter()
            .sum();
        assert_eq!(total, Ns::from_us(6));
    }

    #[test]
    fn clock_is_monotonic() {
        let mut c = SimClock::new();
        c.advance_to(Ns::from_ms(1));
        c.advance_to(Ns::from_us(1));
        assert_eq!(c.now(), Ns::from_ms(1));
        c.advance(Ns::from_us(1));
        assert_eq!(c.now(), Ns::from_ms(1) + Ns::from_us(1));
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(Ns::from_ns(12).to_string(), "12ns");
        assert_eq!(Ns::from_us(12).to_string(), "12.000us");
        assert_eq!(Ns::from_ms(12).to_string(), "12.000ms");
        assert_eq!(Ns::from_secs(12).to_string(), "12.000s");
    }
}
