//! Deterministic structured tracing for the whole stack.
//!
//! Every interesting step of a simulated request — the host-level span, the
//! flash and mechanical device operations underneath it, fault-injector
//! draws, and (one crate up) the I-CASH controller's codec decisions — can
//! emit a [`TraceEvent`] stamped with **virtual** time. Because the
//! simulation consults no wall clock and no global randomness, a trace is a
//! deterministic artifact: the same seed produces the same byte-for-byte
//! event stream, so traces serve as *oracles* that cross-check the
//! aggregate counters ([`DeviceStats`](crate::stats::DeviceStats),
//! [`FaultStats`](crate::fault::FaultStats), `SystemReport`) event by
//! event.
//!
//! ## Overhead contract
//!
//! Tracing follows the fault layer's zero-cost rule: a disabled [`Tracer`]
//! (the default) is a single `Option` check per site, the event-construction
//! closure is never invoked, and **no simulated outcome may ever depend on
//! whether a tracer is attached** — attaching a sink changes what is
//! *recorded*, never what *happens*. Differential tests hold both halves of
//! the contract.
//!
//! ## Example
//!
//! ```
//! use icash_storage::ssd::{Ssd, SsdConfig};
//! use icash_storage::time::Ns;
//! use icash_storage::trace::{TraceKind, Tracer};
//!
//! let (tracer, sink) = Tracer::ring(64);
//! let mut ssd = Ssd::new(SsdConfig::fusion_io(1 << 20));
//! ssd.set_tracer(tracer);
//! ssd.write(Ns::ZERO, 7)?;
//! let sink = sink.lock().expect("sink");
//! let first = sink.events().front().expect("one event");
//! assert!(matches!(first.kind, TraceKind::SsdProgram { lpn: 7, .. }));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::request::Op;
use crate::time::Ns;
use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Mutex};

/// The kind of an injected fault, mirroring the counters of
/// [`FaultStats`](crate::fault::FaultStats) one-to-one so a counting sink
/// can be diffed against the injector's own accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// An HDD block read hit a latent sector error.
    HddRead,
    /// An HDD block write failed transiently.
    HddWrite,
    /// An SSD page read was uncorrectable (base rate or trigger).
    SsdRead,
    /// The wear-out term of an uncorrectable SSD read (also counted as
    /// [`FaultKind::SsdRead`] in [`FaultStats`], so it is emitted as a
    /// second event alongside one `SsdRead` event).
    Wearout,
    /// A bad sector/page was cleared by a successful rewrite (drive remap).
    Remap,
    /// An operation was refused because the whole device had died
    /// (a `ssd_dies_at`/`hdd_dies_at` trigger fired).
    DeviceDead,
}

impl FaultKind {
    fn name(self) -> &'static str {
        match self {
            FaultKind::HddRead => "hdd_read",
            FaultKind::HddWrite => "hdd_write",
            FaultKind::SsdRead => "ssd_read",
            FaultKind::Wearout => "wearout",
            FaultKind::Remap => "remap",
            FaultKind::DeviceDead => "device_dead",
        }
    }

    fn from_name(s: &str) -> Option<Self> {
        Some(match s {
            "hdd_read" => FaultKind::HddRead,
            "hdd_write" => FaultKind::HddWrite,
            "ssd_read" => FaultKind::SsdRead,
            "wearout" => FaultKind::Wearout,
            "remap" => FaultKind::Remap,
            "device_dead" => FaultKind::DeviceDead,
            _ => return None,
        })
    }
}

/// What happened at one traced point (the payload of a [`TraceEvent`]).
///
/// Device events carry their queueing delay and service time so a profile
/// can attribute every microsecond of a request's latency to a phase;
/// controller events carry the decision data (delta size, cache hit, bind
/// outcome) the paper's aggregate numbers hide.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceKind {
    /// A host request entered a storage system (span open).
    RequestStart {
        /// Read or write.
        op: Op,
        /// First logical block of the request.
        lba: u64,
        /// Request length in blocks.
        blocks: u32,
    },
    /// The host request that opened the current span completed; the event's
    /// `at` is the completion instant (span close).
    RequestEnd,
    /// One SSD page read (host-level).
    SsdRead {
        /// Logical page number.
        lpn: u64,
        /// Time spent waiting for the flash channel.
        queued: Ns,
        /// Flash service time.
        service: Ns,
        /// Whether the read returned data (false: uncorrectable).
        ok: bool,
    },
    /// One SSD page program (host-level), with the garbage-collection work
    /// it triggered.
    SsdProgram {
        /// Logical page number.
        lpn: u64,
        /// Time spent waiting for the flash channel.
        queued: Ns,
        /// Flash service time (including any GC ops charged to this write).
        service: Ns,
        /// Pages read by the GC pass this write triggered.
        gc_reads: u32,
        /// Pages programmed by that GC pass.
        gc_programs: u32,
        /// Blocks erased by that GC pass.
        erases: u32,
    },
    /// An SSD page was trimmed (invalidated without a program).
    SsdTrim {
        /// Logical page number.
        lpn: u64,
    },
    /// One HDD read.
    HddRead {
        /// Member-disk index within the array.
        disk: u8,
        /// First block address on the disk.
        lba: u64,
        /// Span length in blocks.
        blocks: u32,
        /// Time spent waiting for the head.
        queued: Ns,
        /// Seek + rotation + transfer time.
        service: Ns,
        /// Whether the read succeeded (false: latent sector error).
        ok: bool,
    },
    /// One HDD write.
    HddWrite {
        /// Member-disk index within the array.
        disk: u8,
        /// First block address on the disk.
        lba: u64,
        /// Span length in blocks.
        blocks: u32,
        /// Time spent waiting for the head.
        queued: Ns,
        /// Seek + rotation + transfer time.
        service: Ns,
        /// Whether the write succeeded (false: transient write fault).
        ok: bool,
    },
    /// The injector decided a fault (or a remap) at this operation.
    FaultInjected {
        /// Which counter this event mirrors.
        kind: FaultKind,
        /// Block/page address involved.
        addr: u64,
    },
    /// A read was served from the controller's RAM buffer.
    RamHit {
        /// Logical block served.
        lba: u64,
    },
    /// A signature probe for a new write: did any reference candidate
    /// accept it as a delta?
    SigProbe {
        /// Logical block probed.
        lba: u64,
        /// Reference candidates the index offered.
        candidates: u32,
        /// Whether the block was bound to a reference (signature match).
        bound: bool,
    },
    /// A delta encode completed.
    DeltaEncode {
        /// Logical block encoded.
        lba: u64,
        /// Reference block it was encoded against.
        reference: u64,
        /// Encoded delta size in bytes.
        bytes: u32,
    },
    /// A read was served from the SSD fast path — reference + delta, or a
    /// clean slot with no delta pending (the controller's "delta hit").
    DeltaDecode {
        /// Logical block decoded.
        lba: u64,
    },
    /// A reference-index cache probe for a slot's chunk index.
    RefCache {
        /// SSD slot probed.
        slot: u64,
        /// Whether a built index was already cached.
        hit: bool,
    },
    /// The dirty delta buffer was flushed to the HDD log.
    LogFlush {
        /// Log entries appended.
        entries: u32,
        /// Log blocks written.
        blocks: u32,
    },
    /// The delta log was compacted (live entries rewritten).
    LogClean,
    /// One background scrub pass over the SSD slots.
    Scrub {
        /// Slots whose checksum was verified.
        scanned: u32,
        /// Slots repaired from a redundant source.
        repaired: u32,
        /// Slots that could not be repaired.
        failed: u32,
    },
    /// One step of the slot-repair ladder (re-derive a slot's content and
    /// reprogram it).
    SlotRepair {
        /// SSD slot repaired.
        slot: u64,
        /// Whether the repair succeeded.
        ok: bool,
    },
    /// A faulted device op was retried by the controller.
    FaultRetry {
        /// Block address retried.
        lba: u64,
        /// True for a write retry, false for a read retry.
        write: bool,
    },
    /// An encoded delta entered the staging buffer (group commit pending).
    StageEnter {
        /// Block address staged.
        lba: u64,
        /// Flush-ticket watermark covering the staged write.
        ticket: u64,
        /// Encoded payload bytes staged.
        bytes: u32,
    },
    /// A group commit drained the staging buffer into one sequential
    /// multi-entry log append.
    GroupCommit {
        /// Staged entries committed together.
        entries: u32,
        /// Encoded payload bytes committed.
        bytes: u32,
    },
    /// A durability barrier (`await_flush`/`sync`) forced buffered state
    /// to stable media.
    Barrier {
        /// The ticket the barrier waited for.
        ticket: u64,
        /// Whether the barrier had to flush (false: already durable).
        waited: bool,
    },
    /// Crash recovery dropped unverifiable log frames.
    RecoveryTruncate {
        /// Frames dropped from the tail.
        frames: u64,
    },
    /// Crash recovery finished replaying the surviving log.
    RecoveryReplay {
        /// Blocks rebuilt into the table.
        entries: u64,
        /// Stale frames refused during replay.
        stale: u64,
    },
    /// A device's health state machine took an edge.
    HealthTransition {
        /// Device index: 0 = SSD, 1+ = HDD spindles.
        device: u8,
        /// State left.
        from: crate::fault::HealthState,
        /// State entered.
        to: crate::fault::HealthState,
    },
    /// One rate-limited chunk of an online rebuild repopulated SSD slots.
    RebuildChunk {
        /// Slots repopulated by this chunk.
        slots: u32,
        /// Slots done so far (including this chunk).
        done: u64,
        /// Slots the rebuild set out to restore.
        total: u64,
    },
    /// A write was refused admission because the staging buffer was full.
    Backpressure {
        /// Block refused.
        lba: u64,
        /// Entries buffered at refusal time.
        queued: u64,
        /// The admission cap.
        cap: u64,
    },
    /// One deterministic exponential-backoff retry of a faulted device op.
    RetryBackoff {
        /// Block address retried.
        lba: u64,
        /// Retry attempt number (1-based).
        attempt: u32,
        /// Backoff delay charged before the retry, in virtual ns.
        delay: u64,
        /// True for a write retry, false for a read retry.
        write: bool,
    },
    /// A command was admitted into a device command queue.
    QueueAdmit {
        /// Device index: 0 = SSD, 1 + spindle index = HDD.
        dev: u8,
        /// First block (HDD) or erase-block id (SSD) of the command.
        lba: u64,
        /// Command length in blocks.
        blocks: u32,
        /// Queue occupancy right after admission (the depth sample the
        /// profile's mean/max queue-depth numbers are built from).
        depth: u32,
    },
    /// A queued command was dispatched out of arrival order (HDD SPTF pick,
    /// or an SSD read/program overtaking deferred erases on its channel).
    QueueReorder {
        /// Device index: 0 = SSD, 1 + spindle index = HDD.
        dev: u8,
        /// First block of the dispatched command.
        lba: u64,
        /// Earlier-arrived commands it overtook.
        jumped: u32,
    },
    /// LBA-adjacent queued commands were merged into one sequential media
    /// transfer.
    Coalesce {
        /// Device index: 0 = SSD, 1 + spindle index = HDD.
        dev: u8,
        /// First block of the merged transfer.
        lba: u64,
        /// Commands merged into the transfer (always ≥ 2).
        spans: u32,
        /// Total blocks of the merged transfer.
        blocks: u32,
    },
    /// An open-loop arrival: the scenario engine's virtual-time event queue
    /// released an operation at its scheduled instant (`at`), independent of
    /// whether the system was ready for it. `queued` is the time the arrival
    /// waited for a free client before service began — the open-loop
    /// queued/service split the closed-loop drivers can never show.
    OpenLoopArrival {
        /// Arrival sequence number (the event queue's tie-break id).
        seq: u64,
        /// First block of the arriving operation.
        lba: u64,
        /// Wait between the scheduled arrival and service start, in
        /// virtual ns (zero when a client was already free).
        queued: u64,
    },
}

/// One trace event: a virtual timestamp plus what happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Virtual time of the event.
    pub at: Ns,
    /// What happened.
    pub kind: TraceKind,
}

impl TraceEvent {
    /// Canonical single-line JSON rendering. Field order is fixed, integers
    /// are decimal, and nothing depends on host state, so equal event
    /// streams render byte-identically (the JSONL determinism tests compare
    /// these strings across thread counts).
    pub fn to_json(&self) -> String {
        let at = self.at.as_ns();
        match &self.kind {
            TraceKind::RequestStart { op, lba, blocks } => {
                let op = match op {
                    Op::Read => "read",
                    Op::Write => "write",
                };
                format!(
                    "{{\"at\":{at},\"kind\":\"req_start\",\"op\":\"{op}\",\
                     \"lba\":{lba},\"blocks\":{blocks}}}"
                )
            }
            TraceKind::RequestEnd => {
                format!("{{\"at\":{at},\"kind\":\"req_end\"}}")
            }
            TraceKind::SsdRead {
                lpn,
                queued,
                service,
                ok,
            } => format!(
                "{{\"at\":{at},\"kind\":\"ssd_read\",\"lpn\":{lpn},\
                 \"queued\":{},\"service\":{},\"ok\":{ok}}}",
                queued.as_ns(),
                service.as_ns()
            ),
            TraceKind::SsdProgram {
                lpn,
                queued,
                service,
                gc_reads,
                gc_programs,
                erases,
            } => format!(
                "{{\"at\":{at},\"kind\":\"ssd_program\",\"lpn\":{lpn},\
                 \"queued\":{},\"service\":{},\"gc_reads\":{gc_reads},\
                 \"gc_programs\":{gc_programs},\"erases\":{erases}}}",
                queued.as_ns(),
                service.as_ns()
            ),
            TraceKind::SsdTrim { lpn } => {
                format!("{{\"at\":{at},\"kind\":\"ssd_trim\",\"lpn\":{lpn}}}")
            }
            TraceKind::HddRead {
                disk,
                lba,
                blocks,
                queued,
                service,
                ok,
            } => format!(
                "{{\"at\":{at},\"kind\":\"hdd_read\",\"disk\":{disk},\
                 \"lba\":{lba},\"blocks\":{blocks},\"queued\":{},\
                 \"service\":{},\"ok\":{ok}}}",
                queued.as_ns(),
                service.as_ns()
            ),
            TraceKind::HddWrite {
                disk,
                lba,
                blocks,
                queued,
                service,
                ok,
            } => format!(
                "{{\"at\":{at},\"kind\":\"hdd_write\",\"disk\":{disk},\
                 \"lba\":{lba},\"blocks\":{blocks},\"queued\":{},\
                 \"service\":{},\"ok\":{ok}}}",
                queued.as_ns(),
                service.as_ns()
            ),
            TraceKind::FaultInjected { kind, addr } => format!(
                "{{\"at\":{at},\"kind\":\"fault\",\"fault\":\"{}\",\"addr\":{addr}}}",
                kind.name()
            ),
            TraceKind::RamHit { lba } => {
                format!("{{\"at\":{at},\"kind\":\"ram_hit\",\"lba\":{lba}}}")
            }
            TraceKind::SigProbe {
                lba,
                candidates,
                bound,
            } => format!(
                "{{\"at\":{at},\"kind\":\"sig_probe\",\"lba\":{lba},\
                 \"candidates\":{candidates},\"bound\":{bound}}}"
            ),
            TraceKind::DeltaEncode {
                lba,
                reference,
                bytes,
            } => format!(
                "{{\"at\":{at},\"kind\":\"delta_encode\",\"lba\":{lba},\
                 \"reference\":{reference},\"bytes\":{bytes}}}"
            ),
            TraceKind::DeltaDecode { lba } => {
                format!("{{\"at\":{at},\"kind\":\"delta_decode\",\"lba\":{lba}}}")
            }
            TraceKind::RefCache { slot, hit } => {
                format!("{{\"at\":{at},\"kind\":\"ref_cache\",\"slot\":{slot},\"hit\":{hit}}}")
            }
            TraceKind::LogFlush { entries, blocks } => format!(
                "{{\"at\":{at},\"kind\":\"log_flush\",\"entries\":{entries},\
                 \"blocks\":{blocks}}}"
            ),
            TraceKind::LogClean => {
                format!("{{\"at\":{at},\"kind\":\"log_clean\"}}")
            }
            TraceKind::Scrub {
                scanned,
                repaired,
                failed,
            } => format!(
                "{{\"at\":{at},\"kind\":\"scrub\",\"scanned\":{scanned},\
                 \"repaired\":{repaired},\"failed\":{failed}}}"
            ),
            TraceKind::SlotRepair { slot, ok } => {
                format!("{{\"at\":{at},\"kind\":\"slot_repair\",\"slot\":{slot},\"ok\":{ok}}}")
            }
            TraceKind::FaultRetry { lba, write } => {
                format!("{{\"at\":{at},\"kind\":\"fault_retry\",\"lba\":{lba},\"write\":{write}}}")
            }
            TraceKind::StageEnter { lba, ticket, bytes } => format!(
                "{{\"at\":{at},\"kind\":\"stage_enter\",\"lba\":{lba},\
                 \"ticket\":{ticket},\"bytes\":{bytes}}}"
            ),
            TraceKind::GroupCommit { entries, bytes } => format!(
                "{{\"at\":{at},\"kind\":\"group_commit\",\"entries\":{entries},\
                 \"bytes\":{bytes}}}"
            ),
            TraceKind::Barrier { ticket, waited } => format!(
                "{{\"at\":{at},\"kind\":\"barrier\",\"ticket\":{ticket},\
                 \"waited\":{waited}}}"
            ),
            TraceKind::RecoveryTruncate { frames } => {
                format!("{{\"at\":{at},\"kind\":\"recovery_truncate\",\"frames\":{frames}}}")
            }
            TraceKind::RecoveryReplay { entries, stale } => format!(
                "{{\"at\":{at},\"kind\":\"recovery_replay\",\"entries\":{entries},\
                 \"stale\":{stale}}}"
            ),
            TraceKind::HealthTransition { device, from, to } => format!(
                "{{\"at\":{at},\"kind\":\"health_transition\",\"device\":{device},\
                 \"from\":\"{}\",\"to\":\"{}\"}}",
                from.as_str(),
                to.as_str()
            ),
            TraceKind::RebuildChunk { slots, done, total } => format!(
                "{{\"at\":{at},\"kind\":\"rebuild_chunk\",\"slots\":{slots},\
                 \"done\":{done},\"total\":{total}}}"
            ),
            TraceKind::Backpressure { lba, queued, cap } => format!(
                "{{\"at\":{at},\"kind\":\"backpressure\",\"lba\":{lba},\
                 \"queued\":{queued},\"cap\":{cap}}}"
            ),
            TraceKind::RetryBackoff {
                lba,
                attempt,
                delay,
                write,
            } => format!(
                "{{\"at\":{at},\"kind\":\"retry_backoff\",\"lba\":{lba},\
                 \"attempt\":{attempt},\"delay\":{delay},\"write\":{write}}}"
            ),
            TraceKind::QueueAdmit {
                dev,
                lba,
                blocks,
                depth,
            } => format!(
                "{{\"at\":{at},\"kind\":\"queue_admit\",\"dev\":{dev},\
                 \"lba\":{lba},\"blocks\":{blocks},\"depth\":{depth}}}"
            ),
            TraceKind::QueueReorder { dev, lba, jumped } => format!(
                "{{\"at\":{at},\"kind\":\"queue_reorder\",\"dev\":{dev},\
                 \"lba\":{lba},\"jumped\":{jumped}}}"
            ),
            TraceKind::Coalesce {
                dev,
                lba,
                spans,
                blocks,
            } => format!(
                "{{\"at\":{at},\"kind\":\"coalesce\",\"dev\":{dev},\
                 \"lba\":{lba},\"spans\":{spans},\"blocks\":{blocks}}}"
            ),
            TraceKind::OpenLoopArrival { seq, lba, queued } => format!(
                "{{\"at\":{at},\"kind\":\"open_loop_arrival\",\"seq\":{seq},\
                 \"lba\":{lba},\"queued\":{queued}}}"
            ),
        }
    }

    /// Parses one line produced by [`TraceEvent::to_json`]. Returns `None`
    /// on any malformed input (the round-trip tests require
    /// `from_json(to_json(e)) == Some(e)` for every event shape).
    pub fn from_json(line: &str) -> Option<TraceEvent> {
        let at = Ns::from_ns(field_u64(line, "at")?);
        let kind = match field_str(line, "kind")? {
            "req_start" => TraceKind::RequestStart {
                op: match field_str(line, "op")? {
                    "read" => Op::Read,
                    "write" => Op::Write,
                    _ => return None,
                },
                lba: field_u64(line, "lba")?,
                blocks: field_u64(line, "blocks")? as u32,
            },
            "req_end" => TraceKind::RequestEnd,
            "ssd_read" => TraceKind::SsdRead {
                lpn: field_u64(line, "lpn")?,
                queued: Ns::from_ns(field_u64(line, "queued")?),
                service: Ns::from_ns(field_u64(line, "service")?),
                ok: field_bool(line, "ok")?,
            },
            "ssd_program" => TraceKind::SsdProgram {
                lpn: field_u64(line, "lpn")?,
                queued: Ns::from_ns(field_u64(line, "queued")?),
                service: Ns::from_ns(field_u64(line, "service")?),
                gc_reads: field_u64(line, "gc_reads")? as u32,
                gc_programs: field_u64(line, "gc_programs")? as u32,
                erases: field_u64(line, "erases")? as u32,
            },
            "ssd_trim" => TraceKind::SsdTrim {
                lpn: field_u64(line, "lpn")?,
            },
            "hdd_read" | "hdd_write" => {
                let disk = field_u64(line, "disk")? as u8;
                let lba = field_u64(line, "lba")?;
                let blocks = field_u64(line, "blocks")? as u32;
                let queued = Ns::from_ns(field_u64(line, "queued")?);
                let service = Ns::from_ns(field_u64(line, "service")?);
                let ok = field_bool(line, "ok")?;
                if field_str(line, "kind")? == "hdd_read" {
                    TraceKind::HddRead {
                        disk,
                        lba,
                        blocks,
                        queued,
                        service,
                        ok,
                    }
                } else {
                    TraceKind::HddWrite {
                        disk,
                        lba,
                        blocks,
                        queued,
                        service,
                        ok,
                    }
                }
            }
            "fault" => TraceKind::FaultInjected {
                kind: FaultKind::from_name(field_str(line, "fault")?)?,
                addr: field_u64(line, "addr")?,
            },
            "ram_hit" => TraceKind::RamHit {
                lba: field_u64(line, "lba")?,
            },
            "sig_probe" => TraceKind::SigProbe {
                lba: field_u64(line, "lba")?,
                candidates: field_u64(line, "candidates")? as u32,
                bound: field_bool(line, "bound")?,
            },
            "delta_encode" => TraceKind::DeltaEncode {
                lba: field_u64(line, "lba")?,
                reference: field_u64(line, "reference")?,
                bytes: field_u64(line, "bytes")? as u32,
            },
            "delta_decode" => TraceKind::DeltaDecode {
                lba: field_u64(line, "lba")?,
            },
            "ref_cache" => TraceKind::RefCache {
                slot: field_u64(line, "slot")?,
                hit: field_bool(line, "hit")?,
            },
            "log_flush" => TraceKind::LogFlush {
                entries: field_u64(line, "entries")? as u32,
                blocks: field_u64(line, "blocks")? as u32,
            },
            "log_clean" => TraceKind::LogClean,
            "scrub" => TraceKind::Scrub {
                scanned: field_u64(line, "scanned")? as u32,
                repaired: field_u64(line, "repaired")? as u32,
                failed: field_u64(line, "failed")? as u32,
            },
            "slot_repair" => TraceKind::SlotRepair {
                slot: field_u64(line, "slot")?,
                ok: field_bool(line, "ok")?,
            },
            "fault_retry" => TraceKind::FaultRetry {
                lba: field_u64(line, "lba")?,
                write: field_bool(line, "write")?,
            },
            "stage_enter" => TraceKind::StageEnter {
                lba: field_u64(line, "lba")?,
                ticket: field_u64(line, "ticket")?,
                bytes: field_u64(line, "bytes")? as u32,
            },
            "group_commit" => TraceKind::GroupCommit {
                entries: field_u64(line, "entries")? as u32,
                bytes: field_u64(line, "bytes")? as u32,
            },
            "barrier" => TraceKind::Barrier {
                ticket: field_u64(line, "ticket")?,
                waited: field_bool(line, "waited")?,
            },
            "recovery_truncate" => TraceKind::RecoveryTruncate {
                frames: field_u64(line, "frames")?,
            },
            "recovery_replay" => TraceKind::RecoveryReplay {
                entries: field_u64(line, "entries")?,
                stale: field_u64(line, "stale")?,
            },
            "health_transition" => TraceKind::HealthTransition {
                device: field_u64(line, "device")? as u8,
                from: crate::fault::HealthState::from_name(field_str(line, "from")?)?,
                to: crate::fault::HealthState::from_name(field_str(line, "to")?)?,
            },
            "rebuild_chunk" => TraceKind::RebuildChunk {
                slots: field_u64(line, "slots")? as u32,
                done: field_u64(line, "done")?,
                total: field_u64(line, "total")?,
            },
            "backpressure" => TraceKind::Backpressure {
                lba: field_u64(line, "lba")?,
                queued: field_u64(line, "queued")?,
                cap: field_u64(line, "cap")?,
            },
            "retry_backoff" => TraceKind::RetryBackoff {
                lba: field_u64(line, "lba")?,
                attempt: field_u64(line, "attempt")? as u32,
                delay: field_u64(line, "delay")?,
                write: field_bool(line, "write")?,
            },
            "queue_admit" => TraceKind::QueueAdmit {
                dev: field_u64(line, "dev")? as u8,
                lba: field_u64(line, "lba")?,
                blocks: field_u64(line, "blocks")? as u32,
                depth: field_u64(line, "depth")? as u32,
            },
            "queue_reorder" => TraceKind::QueueReorder {
                dev: field_u64(line, "dev")? as u8,
                lba: field_u64(line, "lba")?,
                jumped: field_u64(line, "jumped")? as u32,
            },
            "coalesce" => TraceKind::Coalesce {
                dev: field_u64(line, "dev")? as u8,
                lba: field_u64(line, "lba")?,
                spans: field_u64(line, "spans")? as u32,
                blocks: field_u64(line, "blocks")? as u32,
            },
            "open_loop_arrival" => TraceKind::OpenLoopArrival {
                seq: field_u64(line, "seq")?,
                lba: field_u64(line, "lba")?,
                queued: field_u64(line, "queued")?,
            },
            _ => return None,
        };
        Some(TraceEvent { at, kind })
    }

    /// The shard tag on a serialized event line. Untagged lines (and every
    /// line written before sharding existed) are shard 0.
    pub fn shard_of_json(line: &str) -> u32 {
        field_u64(line, "shard").unwrap_or(0) as u32
    }
}

/// Extracts the raw text after `"key":` up to the next `,` or `}`.
fn field_raw<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":");
    let start = line.find(&needle)? + needle.len();
    let rest = &line[start..];
    let end = rest
        .char_indices()
        .find(|&(i, c)| {
            if rest[..i].starts_with('"') {
                // Inside a string value: stop only at its closing quote.
                c == '"' && i > 0
            } else {
                c == ',' || c == '}'
            }
        })
        .map(|(i, c)| if c == '"' { i + 1 } else { i })?;
    Some(&rest[..end])
}

fn field_u64(line: &str, key: &str) -> Option<u64> {
    field_raw(line, key)?.parse().ok()
}

fn field_bool(line: &str, key: &str) -> Option<bool> {
    match field_raw(line, key)? {
        "true" => Some(true),
        "false" => Some(false),
        _ => None,
    }
}

fn field_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let raw = field_raw(line, key)?;
    raw.strip_prefix('"')?.strip_suffix('"')
}

/// Where emitted events go. Implementations must be cheap and must never
/// feed anything back into the simulation.
pub trait TraceSink {
    /// Accepts one event.
    fn record(&mut self, event: TraceEvent);

    /// Accepts one event tagged with the shard that emitted it.
    ///
    /// Shard 0 is also the unsharded engine, so sinks that serialize the
    /// tag (e.g. the JSONL sink) must emit identical bytes for shard 0 and
    /// an untagged event — that is what keeps a one-shard router
    /// byte-identical to the bare system. The default drops the tag.
    fn record_sharded(&mut self, shard: u32, event: TraceEvent) {
        let _ = shard;
        self.record(event);
    }
}

/// A bounded in-memory ring of the most recent events (flight-recorder
/// style: attach it to a long run and inspect the tail after a failure).
#[derive(Debug)]
pub struct RingSink {
    cap: usize,
    events: VecDeque<TraceEvent>,
    dropped: u64,
}

impl RingSink {
    /// Creates a ring keeping at most `cap` events (`cap` is clamped to 1).
    pub fn new(cap: usize) -> Self {
        RingSink {
            cap: cap.max(1),
            events: VecDeque::new(),
            dropped: 0,
        }
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> &VecDeque<TraceEvent> {
        &self.events
    }

    /// How many events were evicted to honour the bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

impl TraceSink for RingSink {
    fn record(&mut self, event: TraceEvent) {
        if self.events.len() == self.cap {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
    }
}

/// A counting-only sink: no event storage, just the totals the trace-oracle
/// tests diff against `SystemReport`/`RunSummary`/`IcashStats` fields.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct TraceStats {
    /// Host request spans opened.
    pub requests: u64,
    /// Read request spans.
    pub read_requests: u64,
    /// Write request spans.
    pub write_requests: u64,
    /// Sum of span durations (request arrival to completion).
    pub request_time: Ns,
    /// Host-level SSD page reads.
    pub ssd_reads: u64,
    /// Host-level SSD page programs.
    pub ssd_programs: u64,
    /// Pages read by garbage collection.
    pub ssd_gc_reads: u64,
    /// Pages programmed by garbage collection.
    pub ssd_gc_programs: u64,
    /// Flash blocks erased.
    pub ssd_erases: u64,
    /// Pages trimmed.
    pub ssd_trims: u64,
    /// HDD read operations.
    pub hdd_reads: u64,
    /// HDD write operations.
    pub hdd_writes: u64,
    /// Reads served from the controller's RAM buffer.
    pub ram_hits: u64,
    /// Blocks reconstructed from reference + delta.
    pub delta_decodes: u64,
    /// Delta encodes performed.
    pub delta_encodes: u64,
    /// Total encoded delta bytes.
    pub delta_bytes: u64,
    /// Signature probes for new writes.
    pub sig_probes: u64,
    /// Probes that ended in a reference binding (signature matches).
    pub sig_binds: u64,
    /// Reference-index cache hits.
    pub ref_cache_hits: u64,
    /// Reference-index cache misses.
    pub ref_cache_misses: u64,
    /// Encoded deltas entering the staging buffer.
    pub stage_enters: u64,
    /// Payload bytes entering the staging buffer.
    pub staged_bytes: u64,
    /// Group commits draining the staging buffer.
    pub group_commits: u64,
    /// Staged entries drained by group commits.
    pub group_commit_entries: u64,
    /// Payload bytes drained by group commits.
    pub group_commit_bytes: u64,
    /// Durability barriers that had to flush.
    pub barrier_waits: u64,
    /// Durability barriers satisfied without flushing.
    pub barrier_noops: u64,
    /// Dirty-buffer flushes to the HDD log.
    pub log_flushes: u64,
    /// Log blocks written by those flushes.
    pub log_blocks: u64,
    /// Log compactions.
    pub log_cleans: u64,
    /// Background scrub passes.
    pub scrubs: u64,
    /// Slot-repair attempts.
    pub slot_repairs: u64,
    /// Controller-level fault retries.
    pub fault_retries: u64,
    /// Injected HDD read errors.
    pub faults_hdd_read: u64,
    /// Injected transient HDD write errors.
    pub faults_hdd_write: u64,
    /// Injected uncorrectable SSD reads.
    pub faults_ssd_read: u64,
    /// Wear-out share of the uncorrectable SSD reads.
    pub faults_wearout: u64,
    /// Bad sectors/pages cleared by rewrites.
    pub faults_remapped: u64,
    /// Operations refused by a dead device.
    pub faults_dead_device: u64,
    /// Device health-state transitions.
    pub health_transitions: u64,
    /// Online-rebuild chunks processed.
    pub rebuild_chunks: u64,
    /// SSD slots repopulated by those chunks.
    pub rebuild_slots: u64,
    /// Writes refused admission by staging backpressure.
    pub backpressure_rejects: u64,
    /// Exponential-backoff retries of faulted device ops.
    pub retry_backoffs: u64,
    /// Commands admitted into device command queues.
    pub queue_admits: u64,
    /// Highest queue occupancy any admission observed.
    pub queue_depth_max: u64,
    /// Commands dispatched out of arrival order.
    pub queue_reorders: u64,
    /// Coalesce events (adjacent-command merges).
    pub coalesces: u64,
    /// Commands absorbed into a neighbor's transfer by those merges
    /// (`spans - 1` per event).
    pub coalesced_commands: u64,
    /// Open-loop arrivals released by the scenario engine's event queue.
    pub open_loop_arrivals: u64,
    /// Total virtual time open-loop arrivals waited for a free client.
    pub open_loop_queued: Ns,
    open_span: Option<Ns>,
}

impl TraceSink for TraceStats {
    fn record(&mut self, event: TraceEvent) {
        match event.kind {
            TraceKind::RequestStart { op, .. } => {
                self.requests += 1;
                match op {
                    Op::Read => self.read_requests += 1,
                    Op::Write => self.write_requests += 1,
                }
                self.open_span = Some(event.at);
            }
            TraceKind::RequestEnd => {
                if let Some(start) = self.open_span.take() {
                    self.request_time += event.at - start;
                }
            }
            TraceKind::SsdRead { .. } => self.ssd_reads += 1,
            TraceKind::SsdProgram {
                gc_reads,
                gc_programs,
                erases,
                ..
            } => {
                self.ssd_programs += 1;
                self.ssd_gc_reads += gc_reads as u64;
                self.ssd_gc_programs += gc_programs as u64;
                self.ssd_erases += erases as u64;
            }
            TraceKind::SsdTrim { .. } => self.ssd_trims += 1,
            TraceKind::HddRead { .. } => self.hdd_reads += 1,
            TraceKind::HddWrite { .. } => self.hdd_writes += 1,
            TraceKind::FaultInjected { kind, .. } => match kind {
                FaultKind::HddRead => self.faults_hdd_read += 1,
                FaultKind::HddWrite => self.faults_hdd_write += 1,
                FaultKind::SsdRead => self.faults_ssd_read += 1,
                FaultKind::Wearout => self.faults_wearout += 1,
                FaultKind::Remap => self.faults_remapped += 1,
                FaultKind::DeviceDead => self.faults_dead_device += 1,
            },
            TraceKind::RamHit { .. } => self.ram_hits += 1,
            TraceKind::SigProbe { bound, .. } => {
                self.sig_probes += 1;
                if bound {
                    self.sig_binds += 1;
                }
            }
            TraceKind::DeltaEncode { bytes, .. } => {
                self.delta_encodes += 1;
                self.delta_bytes += bytes as u64;
            }
            TraceKind::DeltaDecode { .. } => self.delta_decodes += 1,
            TraceKind::RefCache { hit, .. } => {
                if hit {
                    self.ref_cache_hits += 1;
                } else {
                    self.ref_cache_misses += 1;
                }
            }
            TraceKind::LogFlush { blocks, .. } => {
                self.log_flushes += 1;
                self.log_blocks += blocks as u64;
            }
            TraceKind::StageEnter { bytes, .. } => {
                self.stage_enters += 1;
                self.staged_bytes += bytes as u64;
            }
            TraceKind::GroupCommit { entries, bytes } => {
                self.group_commits += 1;
                self.group_commit_entries += entries as u64;
                self.group_commit_bytes += bytes as u64;
            }
            TraceKind::Barrier { waited, .. } => {
                if waited {
                    self.barrier_waits += 1;
                } else {
                    self.barrier_noops += 1;
                }
            }
            TraceKind::LogClean => self.log_cleans += 1,
            TraceKind::Scrub { .. } => self.scrubs += 1,
            TraceKind::SlotRepair { .. } => self.slot_repairs += 1,
            TraceKind::FaultRetry { .. } => self.fault_retries += 1,
            TraceKind::HealthTransition { .. } => self.health_transitions += 1,
            TraceKind::RebuildChunk { slots, .. } => {
                self.rebuild_chunks += 1;
                self.rebuild_slots += slots as u64;
            }
            TraceKind::Backpressure { .. } => self.backpressure_rejects += 1,
            TraceKind::RetryBackoff { .. } => self.retry_backoffs += 1,
            TraceKind::QueueAdmit { depth, .. } => {
                self.queue_admits += 1;
                self.queue_depth_max = self.queue_depth_max.max(depth as u64);
            }
            TraceKind::QueueReorder { .. } => self.queue_reorders += 1,
            TraceKind::Coalesce { spans, .. } => {
                self.coalesces += 1;
                self.coalesced_commands += spans.saturating_sub(1) as u64;
            }
            TraceKind::OpenLoopArrival { queued, .. } => {
                self.open_loop_arrivals += 1;
                self.open_loop_queued += Ns::from_ns(queued);
            }
            TraceKind::RecoveryTruncate { .. } | TraceKind::RecoveryReplay { .. } => {}
        }
    }
}

/// A shared handle to a sink, or nothing.
type SharedSink = Arc<Mutex<dyn TraceSink + Send>>;

/// The cheap-clone emission handle every instrumented component holds.
///
/// Disabled (the default) it is one `Option` check: the event-construction
/// closure passed to [`Tracer::emit`] is never called. Enabled, it locks
/// the shared sink and records — within one simulation cell everything is
/// single-threaded, so the lock is never contended; the `Mutex` exists only
/// to keep instrumented systems `Send` for the parallel harness.
#[derive(Clone, Default)]
pub struct Tracer {
    sink: Option<SharedSink>,
    shard: u32,
}

impl Tracer {
    /// The disabled tracer (same as `Tracer::default()`).
    pub fn disabled() -> Self {
        Tracer::default()
    }

    /// A tracer feeding an existing shared sink.
    pub fn to_sink(sink: SharedSink) -> Self {
        Tracer {
            sink: Some(sink),
            shard: 0,
        }
    }

    /// Tags every event this tracer emits with a shard id. The router
    /// hands each shard `tracer.with_shard(i)` over one shared sink, so a
    /// merged stream still says which controller did what. Shard 0 is the
    /// unsharded default.
    pub fn with_shard(mut self, shard: u32) -> Self {
        self.shard = shard;
        self
    }

    /// The shard id stamped on emitted events (0 = unsharded).
    pub fn shard(&self) -> u32 {
        self.shard
    }

    /// A tracer over a fresh bounded ring; returns the handle and the ring.
    pub fn ring(cap: usize) -> (Tracer, Arc<Mutex<RingSink>>) {
        let sink = Arc::new(Mutex::new(RingSink::new(cap)));
        (Tracer::to_sink(sink.clone()), sink)
    }

    /// A tracer over a fresh counting sink; returns the handle and the
    /// counters.
    pub fn counting() -> (Tracer, Arc<Mutex<TraceStats>>) {
        let sink = Arc::new(Mutex::new(TraceStats::default()));
        (Tracer::to_sink(sink.clone()), sink)
    }

    /// Whether events will actually be recorded.
    pub fn is_enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Emits the event built by `make` — which is only invoked when a sink
    /// is attached, so disabled tracing never constructs events.
    #[inline]
    pub fn emit(&self, make: impl FnOnce() -> TraceEvent) {
        if let Some(sink) = &self.sink {
            sink.lock()
                .expect("trace sink poisoned")
                .record_sharded(self.shard, make());
        }
    }
}

impl fmt::Debug for Tracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn every_event_shape() -> Vec<TraceEvent> {
        let e = |kind| TraceEvent {
            at: Ns::from_us(7),
            kind,
        };
        vec![
            e(TraceKind::RequestStart {
                op: Op::Write,
                lba: 42,
                blocks: 8,
            }),
            e(TraceKind::RequestEnd),
            e(TraceKind::SsdRead {
                lpn: 3,
                queued: Ns::from_ns(10),
                service: Ns::from_us(25),
                ok: true,
            }),
            e(TraceKind::SsdProgram {
                lpn: 9,
                queued: Ns::ZERO,
                service: Ns::from_us(200),
                gc_reads: 4,
                gc_programs: 4,
                erases: 1,
            }),
            e(TraceKind::SsdTrim { lpn: 11 }),
            e(TraceKind::HddRead {
                disk: 2,
                lba: 1000,
                blocks: 1,
                queued: Ns::from_ms(1),
                service: Ns::from_ms(4),
                ok: false,
            }),
            e(TraceKind::HddWrite {
                disk: 0,
                lba: 2000,
                blocks: 16,
                queued: Ns::ZERO,
                service: Ns::from_ms(5),
                ok: true,
            }),
            e(TraceKind::FaultInjected {
                kind: FaultKind::Wearout,
                addr: 77,
            }),
            e(TraceKind::RamHit { lba: 5 }),
            e(TraceKind::SigProbe {
                lba: 6,
                candidates: 3,
                bound: true,
            }),
            e(TraceKind::DeltaEncode {
                lba: 6,
                reference: 2,
                bytes: 188,
            }),
            e(TraceKind::DeltaDecode { lba: 6 }),
            e(TraceKind::RefCache {
                slot: 4,
                hit: false,
            }),
            e(TraceKind::LogFlush {
                entries: 12,
                blocks: 2,
            }),
            e(TraceKind::LogClean),
            e(TraceKind::Scrub {
                scanned: 64,
                repaired: 1,
                failed: 0,
            }),
            e(TraceKind::SlotRepair { slot: 8, ok: true }),
            e(TraceKind::FaultRetry {
                lba: 30,
                write: false,
            }),
            e(TraceKind::StageEnter {
                lba: 9,
                ticket: 41,
                bytes: 96,
            }),
            e(TraceKind::GroupCommit {
                entries: 12,
                bytes: 1152,
            }),
            e(TraceKind::Barrier {
                ticket: 41,
                waited: true,
            }),
            e(TraceKind::RecoveryTruncate { frames: 3 }),
            e(TraceKind::RecoveryReplay {
                entries: 40,
                stale: 2,
            }),
            e(TraceKind::FaultInjected {
                kind: FaultKind::DeviceDead,
                addr: 12,
            }),
            e(TraceKind::HealthTransition {
                device: 0,
                from: crate::fault::HealthState::Healthy,
                to: crate::fault::HealthState::Degraded,
            }),
            e(TraceKind::RebuildChunk {
                slots: 4,
                done: 12,
                total: 64,
            }),
            e(TraceKind::Backpressure {
                lba: 33,
                queued: 128,
                cap: 128,
            }),
            e(TraceKind::RetryBackoff {
                lba: 21,
                attempt: 2,
                delay: 100_000,
                write: true,
            }),
            e(TraceKind::QueueAdmit {
                dev: 1,
                lba: 900,
                blocks: 1,
                depth: 5,
            }),
            e(TraceKind::QueueReorder {
                dev: 1,
                lba: 900,
                jumped: 3,
            }),
            e(TraceKind::Coalesce {
                dev: 1,
                lba: 900,
                spans: 4,
                blocks: 4,
            }),
            e(TraceKind::OpenLoopArrival {
                seq: 17,
                lba: 640,
                queued: 2_500,
            }),
        ]
    }

    #[test]
    fn every_event_round_trips_through_json() {
        for event in every_event_shape() {
            let line = event.to_json();
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
            assert!(!line.contains('\n'), "one line per event: {line}");
            let back = TraceEvent::from_json(&line);
            assert_eq!(back.as_ref(), Some(&event), "round trip of {line}");
        }
    }

    #[test]
    fn malformed_json_is_rejected_not_panicked() {
        for bad in [
            "",
            "{}",
            "{\"at\":5}",
            "{\"at\":5,\"kind\":\"no_such_kind\"}",
            "{\"at\":x,\"kind\":\"req_end\"}",
            "{\"at\":5,\"kind\":\"ssd_read\",\"lpn\":1}",
            "{\"at\":5,\"kind\":\"fault\",\"fault\":\"bogus\",\"addr\":1}",
        ] {
            assert_eq!(TraceEvent::from_json(bad), None, "{bad:?}");
        }
    }

    #[test]
    fn disabled_tracer_never_builds_events() {
        let tracer = Tracer::disabled();
        assert!(!tracer.is_enabled());
        tracer.emit(|| unreachable!("closure must not run while disabled"));
    }

    #[test]
    fn ring_sink_is_bounded_and_keeps_the_tail() {
        let (tracer, ring) = Tracer::ring(3);
        for i in 0..10u64 {
            tracer.emit(|| TraceEvent {
                at: Ns::from_ns(i),
                kind: TraceKind::RamHit { lba: i },
            });
        }
        let ring = ring.lock().expect("ring");
        assert_eq!(ring.events().len(), 3);
        assert_eq!(ring.dropped(), 7);
        assert_eq!(ring.events()[0].at, Ns::from_ns(7), "oldest retained");
        assert_eq!(ring.events()[2].at, Ns::from_ns(9), "newest retained");
    }

    #[test]
    fn counting_sink_classifies_every_kind() {
        let (tracer, stats) = Tracer::counting();
        for event in every_event_shape() {
            tracer.emit(|| event.clone());
        }
        let s = stats.lock().expect("stats").clone();
        assert_eq!(s.requests, 1);
        assert_eq!(s.write_requests, 1);
        assert_eq!(s.ssd_reads, 1);
        assert_eq!(s.ssd_programs, 1);
        assert_eq!(s.ssd_gc_reads, 4);
        assert_eq!(s.ssd_erases, 1);
        assert_eq!(s.ssd_trims, 1);
        assert_eq!(s.hdd_reads, 1);
        assert_eq!(s.hdd_writes, 1);
        assert_eq!(s.faults_wearout, 1);
        assert_eq!(s.ram_hits, 1);
        assert_eq!(s.sig_probes, 1);
        assert_eq!(s.sig_binds, 1);
        assert_eq!(s.delta_encodes, 1);
        assert_eq!(s.delta_bytes, 188);
        assert_eq!(s.delta_decodes, 1);
        assert_eq!(s.ref_cache_misses, 1);
        assert_eq!(s.log_flushes, 1);
        assert_eq!(s.log_blocks, 2);
        assert_eq!(s.stage_enters, 1);
        assert_eq!(s.staged_bytes, 96);
        assert_eq!(s.group_commits, 1);
        assert_eq!(s.group_commit_entries, 12);
        assert_eq!(s.group_commit_bytes, 1152);
        assert_eq!(s.barrier_waits, 1);
        assert_eq!(s.barrier_noops, 0);
        assert_eq!(s.log_cleans, 1);
        assert_eq!(s.scrubs, 1);
        assert_eq!(s.slot_repairs, 1);
        assert_eq!(s.fault_retries, 1);
        assert_eq!(s.faults_dead_device, 1);
        assert_eq!(s.health_transitions, 1);
        assert_eq!(s.rebuild_chunks, 1);
        assert_eq!(s.rebuild_slots, 4);
        assert_eq!(s.backpressure_rejects, 1);
        assert_eq!(s.retry_backoffs, 1);
        assert_eq!(s.queue_admits, 1);
        assert_eq!(s.queue_depth_max, 5);
        assert_eq!(s.queue_reorders, 1);
        assert_eq!(s.coalesces, 1);
        assert_eq!(s.coalesced_commands, 3);
        assert_eq!(s.open_loop_arrivals, 1);
        assert_eq!(s.open_loop_queued, Ns::from_ns(2_500));
    }

    #[test]
    fn span_time_pairs_start_and_end() {
        let (tracer, stats) = Tracer::counting();
        tracer.emit(|| TraceEvent {
            at: Ns::from_us(10),
            kind: TraceKind::RequestStart {
                op: Op::Read,
                lba: 0,
                blocks: 1,
            },
        });
        tracer.emit(|| TraceEvent {
            at: Ns::from_us(35),
            kind: TraceKind::RequestEnd,
        });
        assert_eq!(stats.lock().expect("stats").request_time, Ns::from_us(25));
    }

    #[test]
    fn shard_tag_reaches_the_sink_and_defaults_to_zero() {
        /// Records the shard ids seen, proving `emit` routes through
        /// `record_sharded`.
        #[derive(Default)]
        struct ShardLog(Vec<u32>);
        impl TraceSink for ShardLog {
            fn record(&mut self, _event: TraceEvent) {
                self.0.push(u32::MAX); // default path must not be taken
            }
            fn record_sharded(&mut self, shard: u32, _event: TraceEvent) {
                self.0.push(shard);
            }
        }

        let sink = Arc::new(Mutex::new(ShardLog::default()));
        let tracer = Tracer::to_sink(sink.clone());
        assert_eq!(tracer.shard(), 0);
        tracer.emit(|| TraceEvent {
            at: Ns::ZERO,
            kind: TraceKind::RequestEnd,
        });
        let sharded = tracer.clone().with_shard(5);
        assert_eq!(sharded.shard(), 5);
        sharded.emit(|| TraceEvent {
            at: Ns::ZERO,
            kind: TraceKind::RequestEnd,
        });
        assert_eq!(sink.lock().expect("sink").0, vec![0, 5]);
    }

    #[test]
    fn default_record_sharded_drops_the_tag() {
        // Sinks that only implement `record` (ring, counting) still work.
        let (tracer, ring) = Tracer::ring(4);
        tracer.with_shard(3).emit(|| TraceEvent {
            at: Ns::from_us(1),
            kind: TraceKind::RequestEnd,
        });
        assert_eq!(ring.lock().expect("ring").events().len(), 1);
    }

    #[test]
    fn shard_of_json_reads_the_tag() {
        assert_eq!(
            TraceEvent::shard_of_json(r#"{"at":1,"kind":"req_end","shard":7}"#),
            7
        );
        assert_eq!(TraceEvent::shard_of_json(r#"{"at":1,"kind":"req_end"}"#), 0);
    }
}
