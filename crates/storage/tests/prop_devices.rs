//! Property-based tests of the device substrate: whatever the op sequence,
//! devices keep time monotonic, account every operation, and the FTL never
//! loses or aliases a mapping.

use icash_storage::hdd::{Hdd, HddConfig};
use icash_storage::ssd::flash::FlashConfig;
use icash_storage::ssd::ftl::Ftl;
use icash_storage::ssd::{Ssd, SsdConfig};
use icash_storage::time::Ns;
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum DevOp {
    Read { lba: u64, blocks: u8 },
    Write { lba: u64, blocks: u8 },
}

fn dev_ops(span: u64) -> impl Strategy<Value = Vec<DevOp>> {
    prop::collection::vec(
        prop_oneof![
            (0..span, 1u8..8).prop_map(|(lba, blocks)| DevOp::Read { lba, blocks }),
            (0..span, 1u8..8).prop_map(|(lba, blocks)| DevOp::Write { lba, blocks }),
        ],
        1..150,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// HDD completions never run backwards and each op costs at least its
    /// media transfer time.
    #[test]
    fn hdd_time_is_monotonic_and_positive(ops in dev_ops(10_000)) {
        let mut disk = Hdd::new(HddConfig::seagate_sata(16_384));
        let transfer = disk.config().block_transfer();
        let mut t = Ns::ZERO;
        for op in &ops {
            let done = match op {
                DevOp::Read { lba, blocks } => disk.read(t, *lba, *blocks as u32).unwrap(),
                DevOp::Write { lba, blocks } => disk.write(t, *lba, *blocks as u32).unwrap(),
            };
            let blocks = match op {
                DevOp::Read { blocks, .. } | DevOp::Write { blocks, .. } => *blocks as u64,
            };
            prop_assert!(done >= t + transfer * blocks, "service too cheap");
            t = done;
        }
        prop_assert_eq!(disk.stats().ops(), ops.len() as u64);
    }

    /// HDD service time for the same access pattern is deterministic.
    #[test]
    fn hdd_is_deterministic(ops in dev_ops(10_000)) {
        let run = |ops: &[DevOp]| {
            let mut disk = Hdd::new(HddConfig::seagate_sata(16_384));
            let mut t = Ns::ZERO;
            for op in ops {
                t = match op {
                    DevOp::Read { lba, blocks } => disk.read(t, *lba, *blocks as u32).unwrap(),
                    DevOp::Write { lba, blocks } => disk.write(t, *lba, *blocks as u32).unwrap(),
                };
            }
            t
        };
        prop_assert_eq!(run(&ops), run(&ops));
    }

    /// The FTL keeps the logical→physical map a bijection over mapped pages
    /// under arbitrary write/trim churn, and host-program accounting is
    /// exact.
    #[test]
    fn ftl_mapping_stays_bijective(ops in prop::collection::vec((0u64..96, any::<bool>()), 1..400)) {
        let cfg = FlashConfig {
            channels: 4,
            pages_per_block: 8,
            blocks: 24,
            endurance: 100_000,
            ..FlashConfig::slc(1, 0.0)
        };
        let mut ftl = Ftl::new(cfg, 96);
        let mut mapped: HashMap<u64, ()> = HashMap::new();
        let mut host_writes = 0u64;
        for (lpn, write) in ops {
            if write {
                ftl.write(lpn).expect("space must suffice at 50% fill");
                mapped.insert(lpn, ());
                host_writes += 1;
            } else {
                ftl.trim(lpn);
                mapped.remove(&lpn);
            }
            // Bijection check: every mapped lpn has a distinct ppn.
            let mut seen = std::collections::HashSet::new();
            for (&l, _) in &mapped {
                let ppn = ftl.map_read(l).expect("mapped lpn lost");
                prop_assert!(seen.insert(ppn), "ppn aliased");
            }
            prop_assert_eq!(ftl.mapped_pages(), mapped.len() as u64);
        }
        prop_assert_eq!(ftl.gc_stats().host_programs, host_writes);
    }

    /// SSD reads of written pages always succeed and time stays monotonic
    /// per channel stream.
    #[test]
    fn ssd_reads_what_it_wrote(ops in prop::collection::vec(0u64..128, 1..200)) {
        let mut ssd = Ssd::new(SsdConfig::fusion_io(1 << 20));
        let mut written = std::collections::HashSet::new();
        let mut t = Ns::ZERO;
        for (i, lpn) in ops.iter().enumerate() {
            if i % 3 == 0 || !written.contains(lpn) {
                t = t.max(ssd.write(t, *lpn).expect("write"));
                written.insert(*lpn);
            } else {
                t = t.max(ssd.read(t, *lpn).expect("read of written page"));
            }
        }
        prop_assert_eq!(
            ssd.stats().ops(),
            ops.len() as u64
        );
    }
}
