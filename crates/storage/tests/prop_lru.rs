//! Property tests for the unified LRU layer.
//!
//! [`LruList`] is checked against a `VecDeque` recency model, and
//! [`LruMap`] against an inline reimplementation of the *pre-unification*
//! baseline algorithm (`HashMap` of values + `BTreeMap` of recency ticks) —
//! proving the baselines' eviction order is unchanged by the migration to
//! the shared intrusive list.

use icash_storage::lru::{LruList, LruMap};
use proptest::prelude::*;
use proptest::strategy::BoxedStrategy;
use std::collections::{BTreeMap, HashMap, VecDeque};

const SLOTS: usize = 8;

#[derive(Debug, Clone)]
enum ListOp {
    Push(usize),
    Touch(usize),
    Remove(usize),
}

fn list_op() -> BoxedStrategy<ListOp> {
    prop_oneof![
        (0usize..SLOTS).prop_map(ListOp::Push),
        (0usize..SLOTS).prop_map(ListOp::Touch),
        (0usize..SLOTS).prop_map(ListOp::Remove),
    ]
    .boxed()
}

/// The recency map exactly as `icash-baselines::lru_map` implemented it
/// before the unification: values keyed directly, order kept as a
/// `BTreeMap` of monotone ticks. Kept here as the behavioural oracle.
struct TickLruMap<K, V> {
    entries: HashMap<K, (V, u64)>,
    order: BTreeMap<u64, K>,
    tick: u64,
}

impl<K: std::hash::Hash + Eq + Clone, V> TickLruMap<K, V> {
    fn new() -> Self {
        TickLruMap {
            entries: HashMap::new(),
            order: BTreeMap::new(),
            tick: 0,
        }
    }

    fn refresh(&mut self, key: &K) {
        self.tick += 1;
        if let Some((_, t)) = self.entries.get_mut(key) {
            self.order.remove(t);
            *t = self.tick;
            self.order.insert(self.tick, key.clone());
        }
    }

    fn insert(&mut self, key: K, value: V) -> Option<V> {
        self.refresh(&key);
        match self.entries.get_mut(&key) {
            Some((v, _)) => Some(std::mem::replace(v, value)),
            None => {
                self.entries.insert(key.clone(), (value, self.tick));
                self.order.insert(self.tick, key);
                None
            }
        }
    }

    fn get(&mut self, key: &K) -> Option<&V> {
        self.refresh(key);
        self.entries.get(key).map(|(v, _)| v)
    }

    fn peek(&self, key: &K) -> Option<&V> {
        self.entries.get(key).map(|(v, _)| v)
    }

    fn remove(&mut self, key: &K) -> Option<V> {
        let (v, t) = self.entries.remove(key)?;
        self.order.remove(&t);
        Some(v)
    }

    fn pop_lru(&mut self) -> Option<(K, V)> {
        let (&t, key) = self.order.iter().next()?;
        let key = key.clone();
        self.order.remove(&t);
        let (v, _) = self.entries.remove(&key)?;
        Some((key, v))
    }

    fn len(&self) -> usize {
        self.entries.len()
    }
}

#[derive(Debug, Clone)]
enum MapOp {
    Insert(u8, u16),
    Get(u8),
    Peek(u8),
    Remove(u8),
    PopLru,
}

fn map_op() -> BoxedStrategy<MapOp> {
    prop_oneof![
        (0u8..6, any::<u16>()).prop_map(|(k, v)| MapOp::Insert(k, v)),
        (0u8..6).prop_map(MapOp::Get),
        (0u8..6).prop_map(MapOp::Peek),
        (0u8..6).prop_map(MapOp::Remove),
        Just(MapOp::PopLru),
    ]
    .boxed()
}

proptest! {
    /// Push/touch/remove on [`LruList`] matches a `VecDeque` recency model
    /// (front = most recent) at every step.
    #[test]
    fn list_matches_vecdeque_model(ops in prop::collection::vec(list_op(), 0..64)) {
        let mut list = LruList::new();
        list.grow_to(SLOTS);
        let mut model: VecDeque<usize> = VecDeque::new();

        for op in ops {
            match op {
                ListOp::Push(i) => {
                    if !model.contains(&i) {
                        model.push_front(i);
                        list.push_front(i);
                    }
                }
                ListOp::Touch(i) => {
                    if model.contains(&i) {
                        model.retain(|&x| x != i);
                        model.push_front(i);
                        list.touch(i);
                    }
                }
                ListOp::Remove(i) => {
                    if model.contains(&i) {
                        model.retain(|&x| x != i);
                        list.remove(i);
                    }
                }
            }
            list.validate();
            prop_assert_eq!(list.len(), model.len());
            prop_assert_eq!(list.front(), model.front().copied());
            prop_assert_eq!(list.tail(), model.back().copied());
            let order: Vec<usize> = list.iter_front().collect();
            let want: Vec<usize> = model.iter().copied().collect();
            prop_assert_eq!(order, want);
        }
    }

    /// [`LruMap`] agrees with the old tick-based baseline implementation on
    /// every return value and on the final eviction order.
    #[test]
    fn map_matches_old_baseline_impl(ops in prop::collection::vec(map_op(), 0..96)) {
        let mut new_map: LruMap<u8, u16> = LruMap::new();
        let mut old_map: TickLruMap<u8, u16> = TickLruMap::new();

        for op in ops {
            match op {
                MapOp::Insert(k, v) => {
                    prop_assert_eq!(new_map.insert(k, v), old_map.insert(k, v));
                }
                MapOp::Get(k) => {
                    prop_assert_eq!(new_map.get(&k).copied(), old_map.get(&k).copied());
                }
                MapOp::Peek(k) => {
                    prop_assert_eq!(new_map.peek(&k).copied(), old_map.peek(&k).copied());
                }
                MapOp::Remove(k) => {
                    prop_assert_eq!(new_map.remove(&k), old_map.remove(&k));
                }
                MapOp::PopLru => {
                    prop_assert_eq!(new_map.pop_lru(), old_map.pop_lru());
                }
            }
            prop_assert_eq!(new_map.len(), old_map.len());
        }

        // Drain both: identical eviction order, oldest first.
        loop {
            let (a, b) = (new_map.pop_lru(), old_map.pop_lru());
            prop_assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    /// `iter_recent` always lists entries most-recent-first, agreeing with
    /// the reverse of the eviction order.
    #[test]
    fn map_iter_recent_is_reverse_eviction_order(
        ops in prop::collection::vec(map_op(), 0..64),
    ) {
        let mut map: LruMap<u8, u16> = LruMap::new();
        for op in ops {
            match op {
                MapOp::Insert(k, v) => {
                    map.insert(k, v);
                }
                MapOp::Get(k) => {
                    map.get(&k);
                }
                MapOp::Peek(k) => {
                    map.peek(&k);
                }
                MapOp::Remove(k) => {
                    map.remove(&k);
                }
                MapOp::PopLru => {
                    map.pop_lru();
                }
            }
        }
        let recent: Vec<u8> = map.iter_recent().map(|(k, _)| *k).collect();
        let mut evictions: Vec<u8> = Vec::new();
        while let Some((k, _)) = map.pop_lru() {
            evictions.push(k);
        }
        evictions.reverse();
        prop_assert_eq!(recent, evictions);
    }
}
