//! Open-loop arrival processes on virtual time.
//!
//! The paper's benchmarks are closed-loop: a client issues its next request
//! only after the previous one completes, so offered load can never exceed
//! service capacity and queueing time stays structurally bounded. Real
//! storage front-ends are open-loop — requests arrive on their own schedule
//! whether or not the array is ready — and that is where queue depth, the
//! `QueueAdmit` queued/service split, and tail latency actually come from.
//!
//! [`ArrivalProcess`] generates a deterministic, seeded arrival schedule:
//! exponential (Poisson-like) inter-arrival jitter around a base gap, with
//! an optional diurnal sine modulation and optional flash-crowd bursts
//! layered on top. [`EventQueue`] is the virtual-time event queue that
//! dispatches scheduled arrivals in `(time, id)` order, so simultaneous
//! arrivals break ties deterministically by sequence number. Nothing here
//! consults the wall clock: the same seed produces the same schedule,
//! event for event.

#![deny(clippy::unwrap_used)]

use icash_storage::time::Ns;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One scheduled arrival: an instant plus its tie-breaking sequence id.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Arrival {
    /// Virtual arrival instant.
    pub at: Ns,
    /// Monotonic sequence number (0-based), the `(time, id)` tie-break.
    pub id: u64,
}

/// Diurnal sine modulation of the arrival rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Diurnal {
    /// Peak-to-mean rate swing in `[0, 1)`: the rate oscillates between
    /// `1 - amplitude` and `1 + amplitude` times the base rate.
    pub amplitude: f64,
    /// Period of one full day-night cycle in virtual time.
    pub period: Ns,
}

/// Flash-crowd burst modulation: periodic windows of multiplied rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Burst {
    /// Interval between burst onsets.
    pub every: Ns,
    /// Length of each burst window (must be shorter than `every`).
    pub len: Ns,
    /// Rate multiplier inside a burst window (≥ 1).
    pub factor: f64,
}

/// Configuration of one arrival process.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrivalConfig {
    /// Mean inter-arrival gap at the unmodulated base rate.
    pub base_gap: Ns,
    /// Optional diurnal sine modulation.
    pub diurnal: Option<Diurnal>,
    /// Optional flash-crowd bursts.
    pub burst: Option<Burst>,
    /// Exponential inter-arrival jitter (Poisson-like). Off, the process
    /// is a deterministic modulated pacer.
    pub jitter: bool,
}

impl ArrivalConfig {
    /// A stationary process: constant mean rate, exponential jitter.
    pub fn stationary(base_gap: Ns) -> Self {
        ArrivalConfig {
            base_gap,
            diurnal: None,
            burst: None,
            jitter: true,
        }
    }

    /// Adds a diurnal sine swing of `amplitude` over `period`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= amplitude < 1` (an amplitude of 1 would zero the
    /// rate at the trough and stall virtual time) and `period > 0`.
    pub fn with_diurnal(mut self, amplitude: f64, period: Ns) -> Self {
        assert!(
            (0.0..1.0).contains(&amplitude),
            "diurnal amplitude must be in [0, 1), got {amplitude}"
        );
        assert!(period > Ns::ZERO, "diurnal period must be positive");
        self.diurnal = Some(Diurnal { amplitude, period });
        self
    }

    /// Adds flash-crowd bursts: every `every`, the rate multiplies by
    /// `factor` for `len`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < len < every` and `factor >= 1`.
    pub fn with_burst(mut self, every: Ns, len: Ns, factor: f64) -> Self {
        assert!(
            Ns::ZERO < len && len < every,
            "burst window must satisfy 0 < len < every"
        );
        assert!(factor >= 1.0, "burst factor must be >= 1, got {factor}");
        self.burst = Some(Burst { every, len, factor });
        self
    }

    /// The rate multiplier at instant `t` (always strictly positive).
    pub fn rate_at(&self, t: Ns) -> f64 {
        let mut rate = 1.0;
        if let Some(d) = &self.diurnal {
            let phase = (t.as_ns() % d.period.as_ns()) as f64 / d.period.as_ns() as f64;
            rate *= 1.0 + d.amplitude * (phase * std::f64::consts::TAU).sin();
        }
        if let Some(b) = &self.burst {
            if t.as_ns() % b.every.as_ns() < b.len.as_ns() {
                rate *= b.factor;
            }
        }
        rate
    }
}

/// A seeded arrival-schedule generator. Arrival instants are
/// non-decreasing by construction: each gap is a non-negative function of
/// the modulated rate and the (non-negative) exponential jitter, so burst
/// modulation can shrink a gap to zero but never below it.
#[derive(Debug)]
pub struct ArrivalProcess {
    cfg: ArrivalConfig,
    rng: StdRng,
    clock: Ns,
    next_id: u64,
}

impl ArrivalProcess {
    /// Creates a process over `cfg`, seeded deterministically.
    ///
    /// # Panics
    ///
    /// Panics if the base gap is zero — the schedule would degenerate to
    /// infinitely many simultaneous arrivals.
    pub fn new(cfg: ArrivalConfig, seed: u64) -> Self {
        assert!(cfg.base_gap > Ns::ZERO, "base gap must be positive");
        ArrivalProcess {
            cfg,
            rng: StdRng::seed_from_u64(seed),
            clock: Ns::ZERO,
            next_id: 0,
        }
    }

    /// The configuration the process runs.
    pub fn config(&self) -> &ArrivalConfig {
        &self.cfg
    }

    /// Generates the next arrival. Gaps are never negative, so the
    /// returned instants are non-decreasing.
    pub fn next_arrival(&mut self) -> Arrival {
        let rate = self.cfg.rate_at(self.clock);
        let mean_gap = self.cfg.base_gap.as_ns() as f64 / rate;
        let jitter = if self.cfg.jitter {
            // Inverse-CDF exponential sample, mean 1. `random::<f64>()` is
            // in [0, 1), so the argument to ln is in (0, 1] and the result
            // is ≥ 0 — a gap can shrink to zero but never go negative.
            -(1.0 - self.rng.random::<f64>()).ln()
        } else {
            1.0
        };
        let gap = (mean_gap * jitter).round().max(0.0) as u64;
        self.clock += Ns::from_ns(gap);
        let id = self.next_id;
        self.next_id += 1;
        Arrival { at: self.clock, id }
    }

    /// Generates the next `n` arrivals in schedule order.
    pub fn take(&mut self, n: u64) -> Vec<Arrival> {
        (0..n).map(|_| self.next_arrival()).collect()
    }
}

/// The deterministic virtual-time event queue: arrivals come out ordered
/// by `(time, id)`, so two arrivals scheduled for the same instant always
/// dispatch in sequence-number order regardless of push order.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Reverse<(Ns, u64)>>,
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Schedules an arrival.
    pub fn push(&mut self, arrival: Arrival) {
        self.heap.push(Reverse((arrival.at, arrival.id)));
    }

    /// Dispatches the earliest arrival, ties broken by id.
    pub fn pop(&mut self) -> Option<Arrival> {
        self.heap.pop().map(|Reverse((at, id))| Arrival { at, id })
    }

    /// Scheduled arrivals not yet dispatched.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stationary_gaps_average_the_base() {
        let mut p = ArrivalProcess::new(ArrivalConfig::stationary(Ns::from_us(100)), 7);
        let arrivals = p.take(4_000);
        let last = arrivals.last().expect("non-empty");
        let mean_gap = last.at.as_ns() as f64 / arrivals.len() as f64;
        assert!(
            (60_000.0..140_000.0).contains(&mean_gap),
            "mean gap {mean_gap} ns should be near the 100 µs base"
        );
    }

    #[test]
    fn arrivals_are_non_decreasing_and_ids_sequential() {
        let cfg = ArrivalConfig::stationary(Ns::from_us(50))
            .with_diurnal(0.9, Ns::from_ms(10))
            .with_burst(Ns::from_ms(5), Ns::from_ms(1), 16.0);
        let mut p = ArrivalProcess::new(cfg, 3);
        let mut prev = Ns::ZERO;
        for (i, a) in p.take(2_000).into_iter().enumerate() {
            assert!(a.at >= prev, "arrival {i} went back in time");
            assert_eq!(a.id, i as u64);
            prev = a.at;
        }
    }

    #[test]
    fn same_seed_is_identical() {
        let cfg = ArrivalConfig::stationary(Ns::from_us(80)).with_diurnal(0.5, Ns::from_ms(2));
        let a = ArrivalProcess::new(cfg.clone(), 11).take(500);
        let b = ArrivalProcess::new(cfg, 11).take(500);
        assert_eq!(a, b);
    }

    #[test]
    fn burst_windows_raise_the_rate() {
        let base = Ns::from_us(100);
        let mut cfg =
            ArrivalConfig::stationary(base).with_burst(Ns::from_ms(10), Ns::from_ms(2), 10.0);
        cfg.jitter = false;
        let mut p = ArrivalProcess::new(cfg, 0);
        let arrivals = p.take(1_000);
        // Each gap is priced at the rate ruling at its *start*, so classify
        // by the earlier arrival's window.
        let in_burst = arrivals
            .windows(2)
            .filter(|w| w[0].at.as_ns() % 10_000_000 < 2_000_000)
            .map(|w| (w[1].at - w[0].at).as_ns())
            .collect::<Vec<_>>();
        assert!(!in_burst.is_empty());
        assert!(
            in_burst.iter().all(|&g| g <= 10_000),
            "in-burst gaps must be ~base/10"
        );
    }

    #[test]
    fn event_queue_orders_by_time_then_id() {
        let mut q = EventQueue::new();
        q.push(Arrival {
            at: Ns::from_us(5),
            id: 2,
        });
        q.push(Arrival {
            at: Ns::from_us(1),
            id: 3,
        });
        q.push(Arrival {
            at: Ns::from_us(5),
            id: 1,
        });
        assert_eq!(q.len(), 3);
        let order: Vec<(u64, u64)> = std::iter::from_fn(|| q.pop())
            .map(|a| (a.at.as_ns(), a.id))
            .collect();
        assert_eq!(order, vec![(1_000, 3), (5_000, 1), (5_000, 2)]);
        assert!(q.is_empty());
    }

    #[test]
    #[should_panic(expected = "amplitude")]
    fn full_amplitude_rejected() {
        let _ = ArrivalConfig::stationary(Ns::from_us(1)).with_diurnal(1.0, Ns::from_ms(1));
    }

    #[test]
    #[should_panic(expected = "burst factor")]
    fn damping_burst_rejected() {
        let _ = ArrivalConfig::stationary(Ns::from_us(1)).with_burst(
            Ns::from_ms(1),
            Ns::from_us(1),
            0.5,
        );
    }

    #[test]
    #[should_panic(expected = "base gap")]
    fn zero_gap_rejected() {
        let _ = ArrivalProcess::new(ArrivalConfig::stationary(Ns::ZERO), 0);
    }
}
