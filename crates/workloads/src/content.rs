//! Content-locality model: the data the workloads read and write.
//!
//! Evaluating I-CASH "is unique in the sense that I/O address traces are
//! not sufficient because deltas are content dependent" (paper §4.4). This
//! model generates block *content*, deterministically, with the two
//! properties the paper's gains rest on:
//!
//! * **Content locality within blocks**: a write changes only 5–20 % of a
//!   block's bits (paper §2.2), in a few clusters.
//! * **Content locality across blocks**: blocks come in *families* sharing
//!   a common base (database pages of one table, blocks of cloned VM
//!   images), so one family member can reference-encode the others.
//!   Families are derived from the VM-stripped block offset, which is
//!   exactly why cloned VM images (same offsets, different VM tags) share
//!   content.
//!
//! A configurable fraction of blocks is *unique* (incompressible), modeling
//! packed/encrypted/multimedia data.

use icash_storage::block::{BlockBuf, Lba, BLOCK_SIZE};
use icash_storage::system::ContentSource;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Static description of a content profile.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ContentProfile {
    /// Blocks per similarity family.
    pub family_blocks: u64,
    /// Per-mille of blocks with unique (incompressible) content.
    pub unique_permille: u32,
    /// Bytes that distinguish one family member from another.
    pub personal_bytes: usize,
    /// Bytes changed by one write (the 5–20 %-of-bits observation).
    pub mutation_bytes: usize,
    /// Clusters the mutated bytes are grouped into.
    pub clusters: usize,
}

impl ContentProfile {
    /// Database-page-like content: tight families, small clustered updates.
    pub fn database() -> Self {
        ContentProfile {
            family_blocks: 64,
            unique_permille: 50,
            personal_bytes: 96,
            mutation_bytes: 300,
            clusters: 4,
        }
    }

    /// File-server content: looser families, bigger rewrites.
    pub fn file_server() -> Self {
        ContentProfile {
            family_blocks: 32,
            unique_permille: 150,
            personal_bytes: 128,
            mutation_bytes: 700,
            clusters: 6,
        }
    }

    /// Web/access-log text (the Hadoop WordCount input): highly repetitive
    /// lines, so blocks across big regions are near-identical.
    pub fn log_text() -> Self {
        ContentProfile {
            family_blocks: 512,
            unique_permille: 40,
            personal_bytes: 120,
            mutation_bytes: 400,
            clusters: 5,
        }
    }

    /// Mail-store content: replicated message bodies give large similarity
    /// families; a quarter of blocks (compressed attachments) stay unique.
    pub fn mail_store() -> Self {
        ContentProfile {
            family_blocks: 64,
            unique_permille: 250,
            personal_bytes: 200,
            mutation_bytes: 600,
            clusters: 6,
        }
    }

    /// Web/e-commerce content: large read-mostly families.
    pub fn web_content() -> Self {
        ContentProfile {
            family_blocks: 128,
            unique_permille: 80,
            personal_bytes: 64,
            mutation_bytes: 250,
            clusters: 3,
        }
    }

    /// Cloned VM images: very large families, tiny per-clone deltas.
    pub fn vm_images() -> Self {
        ContentProfile {
            family_blocks: 256,
            unique_permille: 30,
            personal_bytes: 48,
            mutation_bytes: 200,
            clusters: 3,
        }
    }

    /// Fully unique content (the adversarial case for I-CASH).
    pub fn incompressible() -> Self {
        ContentProfile {
            family_blocks: 1,
            unique_permille: 1_000,
            personal_bytes: 0,
            mutation_bytes: BLOCK_SIZE,
            clusters: 1,
        }
    }
}

#[inline]
fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

/// Cheap stateless mixer for deriving per-block seeds.
#[inline]
fn mix(a: u64, b: u64) -> u64 {
    let mut x = a
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(b)
        .wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 31;
    x.wrapping_mul(0x94d0_49bb_1331_11eb) | 1
}

/// Deterministic content generator + per-block version tracker.
///
/// # Examples
///
/// ```
/// use icash_storage::block::Lba;
/// use icash_workloads::content::{ContentModel, ContentProfile};
///
/// let mut model = ContentModel::new(7, ContentProfile::database());
/// let v0 = model.current_content(Lba::new(10));
/// let v1 = model.write_payload(Lba::new(10));
/// assert_ne!(v0, v1);
/// // A write changes only a small part of the block.
/// let changed = v0
///     .as_slice()
///     .iter()
///     .zip(v1.as_slice())
///     .filter(|(a, b)| a != b)
///     .count();
/// assert!(changed < 1024);
/// ```
#[derive(Debug, Clone)]
pub struct ContentModel {
    seed: u64,
    profile: ContentProfile,
    versions: HashMap<Lba, u32>,
}

impl ContentModel {
    /// Creates a model from a seed and a content profile.
    pub fn new(seed: u64, profile: ContentProfile) -> Self {
        ContentModel {
            seed,
            profile,
            versions: HashMap::new(),
        }
    }

    /// The profile in force.
    pub fn profile(&self) -> &ContentProfile {
        &self.profile
    }

    /// The similarity family of `lba` — derived from the VM-stripped offset
    /// so cloned VM images share families.
    pub fn family_of(&self, lba: Lba) -> u64 {
        lba.offset() / self.profile.family_blocks.max(1)
    }

    /// Whether `lba` carries unique (incompressible) content.
    pub fn is_unique(&self, lba: Lba) -> bool {
        (mix(self.seed ^ 0xD00D, lba.offset()) % 1_000) < self.profile.unique_permille as u64
    }

    /// Content of `lba` at version `version`.
    pub fn content_at(&self, lba: Lba, version: u32) -> BlockBuf {
        let mut buf = vec![0u8; BLOCK_SIZE];
        if self.is_unique(lba) {
            let mut st = mix(self.seed ^ 0xFACE, lba.raw() ^ ((version as u64) << 40));
            for chunk in buf.chunks_mut(8) {
                let v = xorshift(&mut st).to_le_bytes();
                let n = chunk.len();
                chunk.copy_from_slice(&v[..n]);
            }
            return BlockBuf::from_vec(buf);
        }
        // The shared family base.
        let mut st = mix(self.seed, self.family_of(lba));
        for chunk in buf.chunks_mut(8) {
            let v = xorshift(&mut st).to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&v[..n]);
        }
        // Personalization: what makes this block this block.
        self.splat(
            &mut buf,
            mix(self.seed ^ 0xBEEF, lba.raw()),
            self.profile.personal_bytes,
            self.profile.clusters.max(1),
        );
        // Version mutations: what this write changed.
        if version > 0 {
            self.splat(
                &mut buf,
                mix(self.seed ^ 0xCAFE, lba.raw() ^ ((version as u64) << 32)),
                self.profile.mutation_bytes,
                self.profile.clusters.max(1),
            );
        }
        BlockBuf::from_vec(buf)
    }

    /// Overwrites `total` bytes in `clusters` clusters at seeded positions.
    fn splat(&self, buf: &mut [u8], seed: u64, total: usize, clusters: usize) {
        if total == 0 {
            return;
        }
        let mut st = seed;
        let per_cluster = (total / clusters).max(1);
        for _ in 0..clusters {
            let start = (xorshift(&mut st) as usize) % BLOCK_SIZE;
            for i in 0..per_cluster {
                let pos = (start + i) % BLOCK_SIZE;
                buf[pos] = (xorshift(&mut st) & 0xff) as u8;
            }
        }
    }

    /// The block's current version (0 = never written).
    pub fn version_of(&self, lba: Lba) -> u32 {
        self.versions.get(&lba).copied().unwrap_or(0)
    }

    /// Content of `lba` at its current version.
    pub fn current_content(&self, lba: Lba) -> BlockBuf {
        self.content_at(lba, self.version_of(lba))
    }

    /// Advances `lba` to its next version and returns the new content — the
    /// payload of a write request.
    pub fn write_payload(&mut self, lba: Lba) -> BlockBuf {
        let v = self.versions.entry(lba).or_insert(0);
        *v += 1;
        let version = *v;
        self.content_at(lba, version)
    }
}

impl ContentSource for ContentModel {
    fn initial_content(&self, lba: Lba) -> BlockBuf {
        self.content_at(lba, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> ContentModel {
        ContentModel::new(42, ContentProfile::database())
    }

    fn diff_bytes(a: &BlockBuf, b: &BlockBuf) -> usize {
        a.as_slice()
            .iter()
            .zip(b.as_slice())
            .filter(|(x, y)| x != y)
            .count()
    }

    #[test]
    fn generation_is_deterministic() {
        let m1 = model();
        let m2 = model();
        for lba in [0u64, 5, 1000] {
            assert_eq!(
                m1.content_at(Lba::new(lba), 3),
                m2.content_at(Lba::new(lba), 3)
            );
        }
    }

    #[test]
    fn family_members_are_similar_strangers_are_not() {
        let m = model();
        // Find two non-unique blocks of one family and one from far away.
        let base = (0..200u64)
            .map(Lba::new)
            .filter(|&l| !m.is_unique(l))
            .collect::<Vec<_>>();
        let a = base[0];
        let b = base
            .iter()
            .copied()
            .find(|&l| l != a && m.family_of(l) == m.family_of(a))
            .expect("family sibling");
        let far = base
            .iter()
            .copied()
            .find(|&l| m.family_of(l) != m.family_of(a))
            .expect("stranger");
        let (ca, cb, cf) = (m.content_at(a, 0), m.content_at(b, 0), m.content_at(far, 0));
        assert!(
            diff_bytes(&ca, &cb) < 400,
            "siblings differ by {} bytes",
            diff_bytes(&ca, &cb)
        );
        assert!(
            diff_bytes(&ca, &cf) > 3000,
            "strangers differ by {} bytes",
            diff_bytes(&ca, &cf)
        );
    }

    #[test]
    fn writes_change_a_bounded_slice_of_the_block() {
        let mut m = model();
        let lba = (0..100u64)
            .map(Lba::new)
            .find(|&l| !m.is_unique(l))
            .expect("similar block");
        let v0 = m.current_content(lba);
        let v1 = m.write_payload(lba);
        let d = diff_bytes(&v0, &v1);
        assert!(d > 0, "writes must change something");
        assert!(d <= 2 * 300 + 16, "changed {d} bytes");
    }

    #[test]
    fn vm_clones_share_content() {
        let m = ContentModel::new(9, ContentProfile::vm_images());
        let native = Lba::new(500);
        let clone = Lba::new(500).with_vm(3);
        if !m.is_unique(native) {
            let d = diff_bytes(&m.content_at(native, 0), &m.content_at(clone, 0));
            assert!(d < 200, "clone differs by {d} bytes");
        }
        assert_eq!(m.family_of(native), m.family_of(clone));
    }

    #[test]
    fn unique_blocks_are_incompressible() {
        let m = model();
        let unique = (0..2000u64)
            .map(Lba::new)
            .find(|&l| m.is_unique(l))
            .expect("some unique block");
        let v0 = m.content_at(unique, 0);
        let v1 = m.content_at(unique, 1);
        assert!(diff_bytes(&v0, &v1) > 3500, "unique rewrites are total");
    }

    #[test]
    fn versions_advance_per_block() {
        let mut m = model();
        assert_eq!(m.version_of(Lba::new(1)), 0);
        m.write_payload(Lba::new(1));
        m.write_payload(Lba::new(1));
        assert_eq!(m.version_of(Lba::new(1)), 2);
        assert_eq!(m.version_of(Lba::new(2)), 0);
        // current_content reflects the version.
        assert_eq!(m.current_content(Lba::new(1)), m.content_at(Lba::new(1), 2));
    }

    #[test]
    fn initial_content_is_version_zero() {
        let mut m = model();
        let lba = Lba::new(77);
        let initial = ContentSource::initial_content(&m, lba);
        assert_eq!(initial, m.content_at(lba, 0));
        m.write_payload(lba);
        // The backing image never changes.
        assert_eq!(ContentSource::initial_content(&m, lba), initial);
    }
}
