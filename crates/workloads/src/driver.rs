//! The closed-loop benchmark driver.
//!
//! Reproduces the paper's measurement setup: N logical clients issue
//! requests against one storage system, each waiting for its previous
//! request (plus its application compute) before issuing the next. The
//! driver owns the CPU model and the content model, collects latencies
//! into histograms, and emits a [`RunSummary`] with everything the paper's
//! figures and tables report.
//!
//! With `verify` enabled, every read is checked against the content
//! model's oracle — a whole-system data-integrity test running under the
//! exact benchmark access pattern.

use crate::content::ContentModel;
use crate::workload::Workload;
use icash_metrics::histogram::LatencyHistogram;
use icash_metrics::summary::RunSummary;
use icash_storage::block::BlockBuf;
use icash_storage::block::Lba;
use icash_storage::cpu::CpuModel;
use icash_storage::lru::LruMap;
use icash_storage::request::{Op, Request};
use icash_storage::system::{IoCtx, StorageSystem};
use icash_storage::time::Ns;

/// The guest VM's page cache (Table 4's "VM RAM" column).
///
/// Disabled by default: the paper's Table 4 op counts were captured at the
/// virtual-disk level, *below* the guest page cache, so the generators
/// already model post-cache traffic. Enabling it (ablations) filters reads
/// through an extra LRU tier the way an in-guest trace would see them.
#[derive(Debug)]
struct PageCache {
    capacity: usize,
    entries: LruMap<Lba, ()>,
}

impl PageCache {
    fn new(capacity_blocks: usize) -> Self {
        PageCache {
            capacity: capacity_blocks,
            entries: LruMap::new(),
        }
    }

    fn contains(&mut self, lba: Lba) -> bool {
        self.entries.get(&lba).is_some()
    }

    fn insert(&mut self, lba: Lba) {
        if self.capacity == 0 || self.contains(lba) {
            return;
        }
        if self.entries.len() >= self.capacity {
            self.entries.pop_lru();
        }
        self.entries.insert(lba, ());
    }
}

/// Driver parameters.
#[derive(Debug, Clone)]
pub struct DriverConfig {
    /// Concurrent closed-loop clients (the paper uses 16 SysBench threads,
    /// 100 LoadSim users, 300 RUBiS clients...).
    pub clients: u32,
    /// Total operations to issue.
    pub ops: u64,
    /// Operations excluded from latency statistics (cache warmup).
    pub warmup_ops: u64,
    /// Verify every read against the content oracle.
    pub verify: bool,
    /// Model the guest page cache in front of the storage system
    /// (ablation; Table 4 traffic is already post-cache).
    pub guest_cache: bool,
    /// CPU model to run on (None = the paper's host Xeon). The paper's §6
    /// future work is an embedded-processor prototype; pass a slower model
    /// to study it.
    pub cpu: Option<CpuModel>,
}

impl DriverConfig {
    /// A configuration issuing `ops` operations with 16 clients and 10 %
    /// warmup.
    pub fn new(ops: u64) -> Self {
        DriverConfig {
            clients: 16,
            ops,
            warmup_ops: ops / 10,
            verify: false,
            guest_cache: false,
            cpu: None,
        }
    }

    /// Runs the storage layer on a custom CPU model (e.g. an embedded
    /// controller processor instead of the host Xeon).
    pub fn cpu(mut self, cpu: CpuModel) -> Self {
        self.cpu = Some(cpu);
        self
    }

    /// Sets the client count.
    pub fn clients(mut self, clients: u32) -> Self {
        self.clients = clients.max(1);
        self
    }

    /// Enables oracle verification of every read.
    pub fn verify(mut self) -> Self {
        self.verify = true;
        self
    }
}

/// Runs `workload` against `system` and summarises the result.
///
/// # Panics
///
/// Panics if `verify` is set and the system returns wrong data — that is
/// the point of verification.
pub fn run_benchmark(
    system: &mut dyn StorageSystem,
    workload: &mut dyn Workload,
    model: &mut ContentModel,
    cfg: &DriverConfig,
) -> RunSummary {
    let mut cpu = cfg.cpu.clone().unwrap_or_else(CpuModel::xeon);
    let mut ready = vec![Ns::ZERO; cfg.clients.max(1) as usize];
    let mut read_latency = LatencyHistogram::new();
    let mut write_latency = LatencyHistogram::new();
    let mut end = Ns::ZERO;
    let mut steady_start = Ns::ZERO;
    // Offline image preparation (charges no virtual time).
    {
        let universe = workload.address_universe();
        let mut ctx = IoCtx {
            backing: &*model,
            cpu: &mut cpu,
            collect_data: false,
        };
        system.preload(&universe, &mut ctx);
    }
    let mut page_cache = PageCache::new(if cfg.guest_cache {
        (workload.spec().vm_ram_bytes / 4096) as usize
    } else {
        0
    });

    for n in 0..cfg.ops {
        // Next client to become ready (closed loop).
        let client = (0..ready.len())
            .min_by_key(|&i| ready[i])
            .expect("at least one client");
        let at = ready[client];
        let wop = workload.next_op();

        let req = match wop.op {
            Op::Read => Request::read_span(wop.lba, wop.blocks, at),
            Op::Write => {
                let payload: Vec<BlockBuf> = (0..wop.blocks as u64)
                    .map(|i| model.write_payload(wop.lba.plus(i)))
                    .collect();
                Request::write_span(wop.lba, at, payload)
            }
        };

        // Reads fully covered by the guest page cache never reach the
        // storage system; everything else goes through and fills it.
        let cache_hit =
            cfg.guest_cache && wop.op == Op::Read && req.lbas().all(|l| page_cache.contains(l));
        let completion = if cache_hit {
            let copy = cpu.charge(icash_storage::cpu::CpuOp::Memcpy);
            let data = if cfg.verify {
                req.lbas().map(|l| model.current_content(l)).collect()
            } else {
                Vec::new()
            };
            icash_storage::request::Completion::with_data(at + copy, data)
        } else {
            for l in req.lbas() {
                page_cache.insert(l);
            }
            let mut ctx = IoCtx {
                backing: &*model,
                cpu: &mut cpu,
                collect_data: cfg.verify,
            };
            system.submit(&req, &mut ctx)
        };

        if cfg.verify && wop.op == Op::Read {
            for (i, lba) in req.lbas().enumerate() {
                // A read the system *reported* failed (media error under
                // fault injection) carries placeholder data; silent wrong
                // data is what verification is hunting.
                if completion.failed(lba) {
                    continue;
                }
                let want = model.current_content(lba);
                assert_eq!(
                    completion.data[i],
                    want,
                    "{}: wrong data at {} (op {n})",
                    system.name(),
                    lba
                );
            }
        }

        let latency = completion.latency(&req);
        if n == cfg.warmup_ops {
            steady_start = at;
        }
        if n >= cfg.warmup_ops {
            match wop.op {
                Op::Read => read_latency.record(latency),
                Op::Write => write_latency.record(latency),
            }
        }

        cpu.charge_app(wop.app_cpu);
        ready[client] = completion.finished + wop.app_cpu + wop.think;
        end = end.max(ready[client]);
    }

    // Clean shutdown: flush buffered state.
    let end = {
        let mut ctx = IoCtx {
            backing: &*model,
            cpu: &mut cpu,
            collect_data: false,
        };
        system.flush(end, &mut ctx).max(end)
    };

    let report = system.report(end);
    let spec = workload.spec();
    let device_energy = report.device_energy;
    let cpu_energy = cpu.energy(end);
    RunSummary {
        system: report.name.clone(),
        workload: spec.name.clone(),
        ops: cfg.ops,
        transactions: cfg.ops / spec.ops_per_transaction.max(1),
        elapsed: end,
        steady_ops: cfg.ops.saturating_sub(cfg.warmup_ops),
        steady_elapsed: end.saturating_sub(steady_start),
        read_latency,
        write_latency,
        cpu_utilization: cpu.utilization(end),
        storage_cpu_utilization: if end == Ns::ZERO {
            0.0
        } else {
            (cpu.storage_busy().as_ns() as f64 / end.as_ns() as f64).min(1.0)
        },
        ssd_writes: report.ssd.as_ref().map(|s| s.writes).unwrap_or(0),
        energy_wh: (device_energy + cpu_energy).as_watt_hours(),
        report,
        wall_ns: 0, // filled in by the harness, which times the whole cell
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::content::ContentProfile;
    use crate::spec::WorkloadSpec;
    use crate::workload::MixedWorkload;
    use icash_storage::request::Completion;
    use icash_storage::system::SystemReport;

    /// A fixed-latency system for driver mechanics.
    #[derive(Debug)]
    struct FixedLatency;

    impl StorageSystem for FixedLatency {
        fn name(&self) -> &str {
            "Fixed"
        }
        fn submit(&mut self, req: &Request, ctx: &mut IoCtx<'_>) -> Completion {
            let data = if ctx.collect_data && req.op == Op::Read {
                req.lbas().map(|l| ctx.backing.initial_content(l)).collect()
            } else {
                Vec::new()
            };
            Completion::with_data(req.at + Ns::from_us(100), data)
        }
        fn report(&self, _elapsed: Ns) -> SystemReport {
            SystemReport {
                name: "Fixed".into(),
                ..SystemReport::default()
            }
        }
    }

    fn tiny_spec() -> WorkloadSpec {
        WorkloadSpec {
            name: "tiny".into(),
            data_bytes: 4 << 20,
            table4_reads: 900,
            table4_writes: 100,
            avg_read_bytes: 4096,
            avg_write_bytes: 4096,
            ssd_bytes: 1 << 20,
            vm_ram_bytes: 1 << 20,
            ram_bytes: 1 << 20,
            zipf_exponent: 1.0,
            active_fraction: 1.0,
            sequential_prob: 0.0,
            seq_run_ops: 1,
            ops_per_transaction: 10,
            app_cpu_per_op: Ns::from_us(50),
            think_per_op: Ns::ZERO,
            profile: ContentProfile::database(),
            clients: 4,
            default_ops: 500,
        }
    }

    #[test]
    fn driver_produces_consistent_summary() {
        let mut system = FixedLatency;
        let mut wl = MixedWorkload::new(tiny_spec(), 1);
        let mut model = ContentModel::new(1, ContentProfile::database());
        let cfg = DriverConfig::new(1_000).clients(4);
        let s = run_benchmark(&mut system, &mut wl, &mut model, &cfg);

        assert_eq!(s.ops, 1_000);
        assert_eq!(s.transactions, 100);
        assert!(s.elapsed > Ns::ZERO);
        // Fixed 100 µs service; page-cache hits complete faster.
        assert!(s.read_latency.mean() <= Ns::from_us(100));
        assert!(s.write_latency.mean() == Ns::from_us(100));
        assert!(s.read_latency.count() + s.write_latency.count() <= 1_000);
        assert!(s.transactions_per_sec() > 0.0);
        assert!(s.cpu_utilization > 0.0);
    }

    #[test]
    fn clients_overlap_in_time() {
        // With C clients and fixed service time S plus think T, the run
        // finishes ~C× faster than a single client.
        let run_with = |clients: u32| {
            let mut system = FixedLatency;
            let mut wl = MixedWorkload::new(tiny_spec(), 1);
            let mut model = ContentModel::new(1, ContentProfile::database());
            let cfg = DriverConfig::new(400).clients(clients);
            run_benchmark(&mut system, &mut wl, &mut model, &cfg).elapsed
        };
        let one = run_with(1);
        let eight = run_with(8);
        assert!(
            eight < one / 4,
            "8 clients ({eight}) should be much faster than 1 ({one})"
        );
    }

    #[test]
    fn guest_cache_absorbs_repeat_reads() {
        // With the ablation cache on, re-reads never reach the system.
        #[derive(Debug)]
        struct Counting {
            reads: u64,
        }
        impl StorageSystem for Counting {
            fn name(&self) -> &str {
                "Counting"
            }
            fn submit(&mut self, req: &Request, _ctx: &mut IoCtx<'_>) -> Completion {
                if req.op == Op::Read {
                    self.reads += 1;
                }
                Completion::at(req.at + Ns::from_us(10))
            }
            fn report(&self, _elapsed: Ns) -> SystemReport {
                SystemReport::default()
            }
        }

        let run = |guest_cache: bool| {
            let mut system = Counting { reads: 0 };
            let mut wl = MixedWorkload::new(tiny_spec(), 3);
            let mut model = ContentModel::new(3, ContentProfile::database());
            let cfg = DriverConfig {
                clients: 1,
                ops: 2_000,
                warmup_ops: 0,
                verify: false,
                guest_cache,
                cpu: None,
            };
            let _ = run_benchmark(&mut system, &mut wl, &mut model, &cfg);
            system.reads
        };
        let without = run(false);
        let with = run(true);
        assert!(
            with < without / 2,
            "guest cache must absorb most re-reads: {with} vs {without}"
        );
    }

    #[test]
    fn warmup_excludes_early_samples() {
        let mut system = FixedLatency;
        let mut wl = MixedWorkload::new(tiny_spec(), 2);
        let mut model = ContentModel::new(2, ContentProfile::database());
        let cfg = DriverConfig::new(100).clients(1);
        let s = run_benchmark(&mut system, &mut wl, &mut model, &cfg);
        assert_eq!(s.read_latency.count() + s.write_latency.count(), 90);
    }
}
