//! Hadoop MapReduce WordCount (paper Table 3, Figures 8–9).
//!
//! The paper runs a two-node Hadoop cluster (two Ubuntu VMs sharing one
//! storage system) counting words in a web-access log: 241 K reads / 62 K
//! writes with large requests (≈21 KB reads, ≈101 KB writes) over a 4.4 GB
//! data set. I-CASH gets 512 MB of SSD and a 256 MB delta buffer. The
//! streaming scans make it bandwidth-bound and CPU-heavy (~83 % utilization
//! in Figure 8b).

use crate::content::ContentProfile;
use crate::spec::WorkloadSpec;
use crate::workload::MixedWorkload;
use icash_storage::time::Ns;

/// The Hadoop workload specification.
pub fn spec() -> WorkloadSpec {
    WorkloadSpec {
        name: "Hadoop".into(),
        data_bytes: 4_718_592 << 10, // 4.4 GiB
        table4_reads: 241_000,
        table4_writes: 62_000,
        avg_read_bytes: 20_992,
        avg_write_bytes: 101_376,
        ssd_bytes: 512 << 20,
        vm_ram_bytes: 512 << 20,
        ram_bytes: 256 << 20,
        zipf_exponent: 1.7,
        active_fraction: 1.0,
        sequential_prob: 0.45,
        seq_run_ops: 24,
        ops_per_transaction: 3_000, // one "transaction" ≈ one map task
        app_cpu_per_op: Ns::from_us(1200),
        think_per_op: Ns::from_us(0),
        profile: ContentProfile::log_text(),
        clients: 16,
        default_ops: 30_000,
    }
}

/// A seeded Hadoop generator.
pub fn workload(seed: u64) -> MixedWorkload {
    MixedWorkload::new(spec(), seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_table_4() {
        let s = spec();
        assert_eq!(s.table4_ops(), 303_000);
        assert!((s.read_fraction() - 0.795).abs() < 0.01);
        assert_eq!(s.read_blocks(), 6); // 20,992 B
        assert_eq!(s.write_blocks(), 25); // 101,376 B
    }
}
