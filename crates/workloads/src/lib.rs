//! # icash-workloads — content-aware workload generation for the I-CASH
//! evaluation
//!
//! "Evaluating the performance of I-CASH is unique in the sense that I/O
//! address traces are not sufficient because deltas are content dependent"
//! (paper §4.4). This crate therefore generates *both* the block access
//! streams and the block *content*:
//!
//! * [`content`] — the content-locality model: family-based similarity,
//!   bounded per-write mutations, unique-block fractions, VM-clone sharing.
//! * [`zipf`] — rejection-inversion Zipf sampling for temporal locality.
//! * [`spec`] / [`workload`] — Table 4 characteristics and the generic
//!   generator built from them.
//! * Per-benchmark modules mirroring Table 3: [`sysbench`], [`hadoop`],
//!   [`tpcc`], [`loadsim`], [`specsfs`], [`rubis`].
//! * [`vm`] — the 5-VM multi-tenant mixers of Figures 15–16.
//! * [`trace`] — record/replay so every system sees an identical stream.
//! * [`driver`] — the closed-loop driver emitting
//!   [`icash_metrics::RunSummary`]s.
//! * [`replay`] — strict MSR-Cambridge-style CSV block-trace parsing with
//!   the seeded content overlay.
//! * [`arrivals`] — seeded open-loop arrival schedules (diurnal,
//!   flash-crowd bursts) on a deterministic virtual-time event queue.
//! * [`scenario`] — the scenario engine: trace replay, open-loop
//!   dispatch, and tenant-churn storms over [`vm`] fleets.
//!
//! ## Example: run SysBench ops against any storage system
//!
//! ```
//! use icash_workloads::content::ContentModel;
//! use icash_workloads::workload::Workload;
//! use icash_workloads::sysbench;
//!
//! let mut wl = sysbench::workload(42);
//! let spec = wl.spec().clone();
//! let mut model = ContentModel::new(42, spec.profile.clone());
//! let op = wl.next_op();
//! assert!(op.lba.offset() < spec.data_blocks());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod arrivals;
pub mod content;
pub mod driver;
pub mod hadoop;
pub mod loadsim;
pub mod replay;
pub mod rubis;
pub mod scenario;
pub mod spec;
pub mod specsfs;
pub mod sysbench;
pub mod tpcc;
pub mod trace;
pub mod vm;
pub mod workload;
pub mod zipf;

pub use content::{ContentModel, ContentProfile};
pub use driver::{run_benchmark, DriverConfig};
pub use spec::WorkloadSpec;
pub use workload::{MixedWorkload, Workload, WorkloadOp};
