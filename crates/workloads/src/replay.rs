//! MSR-Cambridge-style block-trace replay.
//!
//! Address traces alone cannot evaluate I-CASH — deltas are content
//! dependent (paper §4.4) — but real traces are what make a performance
//! model credible. This module splits the difference: it parses the
//! four-column CSV shape the MSR-Cambridge server traces are distributed
//! in (`timestamp,lba,size,r/w`) for the *access* stream, and lays the
//! seeded [`ContentModel`](crate::content::ContentModel) over it for the
//! *content* stream, so replayed traces still exercise delta encoding,
//! similarity detection, and reference binding exactly like the generated
//! workloads do (the driver synthesizes every write payload from the
//! model, so any [`Workload`] — including [`ReplayWorkload`] — inherits
//! the content overlay for free).
//!
//! Parsing is strict: every malformed row is a typed [`ReplayError`] with
//! its 1-based line number, never a panic and never a silent skip.

#![deny(clippy::unwrap_used)]

use crate::spec::WorkloadSpec;
use crate::workload::{Workload, WorkloadOp};
use icash_storage::block::{Lba, BLOCK_SIZE};
use icash_storage::request::Op;
use icash_storage::time::Ns;
use std::fmt;

/// One parsed trace row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplayRecord {
    /// Arrival timestamp in nanoseconds (non-decreasing across the trace).
    pub at: Ns,
    /// Logical block address from the trace (folded into the replay
    /// spec's address space at replay time).
    pub lba: u64,
    /// Request size in bytes (positive; rounded up to whole blocks at
    /// replay time).
    pub bytes: u64,
    /// True for a write, false for a read.
    pub write: bool,
}

impl ReplayRecord {
    /// The record's size in 4 KB blocks (at least 1).
    pub fn blocks(&self) -> u32 {
        (self.bytes.div_ceil(BLOCK_SIZE as u64)).max(1) as u32
    }
}

/// A strict, typed parse failure. Every variant carries the 1-based line
/// number of the offending row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplayError {
    /// The row has fewer than the four required columns.
    Truncated {
        /// 1-based line number.
        line: usize,
        /// Columns the row actually had.
        fields: usize,
    },
    /// The timestamp column is not a non-negative integer.
    BadTimestamp {
        /// 1-based line number.
        line: usize,
        /// The offending column text.
        value: String,
    },
    /// The timestamp went backwards relative to the previous row.
    NonMonotonic {
        /// 1-based line number.
        line: usize,
        /// The previous row's timestamp (ns).
        prev: u64,
        /// This row's (earlier) timestamp (ns).
        now: u64,
    },
    /// The LBA column is not a non-negative integer.
    BadLba {
        /// 1-based line number.
        line: usize,
        /// The offending column text.
        value: String,
    },
    /// The size column is not a positive integer (zero, negative, or
    /// non-numeric).
    BadSize {
        /// 1-based line number.
        line: usize,
        /// The offending column text.
        value: String,
    },
    /// The op column is not one of `R`/`r`/`W`/`w`.
    BadOp {
        /// 1-based line number.
        line: usize,
        /// The offending column text.
        value: String,
    },
    /// The trace has no data rows at all.
    Empty,
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayError::Truncated { line, fields } => write!(
                f,
                "line {line}: expected timestamp,lba,size,r/w but found {fields} column(s)"
            ),
            ReplayError::BadTimestamp { line, value } => write!(
                f,
                "line {line}: bad timestamp {value:?}: expected a non-negative integer"
            ),
            ReplayError::NonMonotonic { line, prev, now } => write!(
                f,
                "line {line}: timestamp {now} went backwards (previous row was {prev})"
            ),
            ReplayError::BadLba { line, value } => write!(
                f,
                "line {line}: bad lba {value:?}: expected a non-negative integer"
            ),
            ReplayError::BadSize { line, value } => write!(
                f,
                "line {line}: bad size {value:?}: expected a positive integer byte count"
            ),
            ReplayError::BadOp { line, value } => {
                write!(f, "line {line}: bad op {value:?}: expected R or W")
            }
            ReplayError::Empty => write!(f, "trace contains no data rows"),
        }
    }
}

impl std::error::Error for ReplayError {}

/// Parses an MSR-Cambridge-style CSV trace: one `timestamp,lba,size,r/w`
/// row per line. Blank lines, `#` comments, and a `timestamp,...` header
/// row are skipped; anything else must parse or the whole trace is
/// rejected with a typed [`ReplayError`].
///
/// # Errors
///
/// Returns the first [`ReplayError`] encountered, with its line number.
pub fn parse_csv(text: &str) -> Result<Vec<ReplayRecord>, ReplayError> {
    let mut records = Vec::new();
    let mut prev: Option<u64> = None;
    for (i, raw) in text.lines().enumerate() {
        let line = i + 1;
        let row = raw.trim();
        if row.is_empty() || row.starts_with('#') || row.starts_with("timestamp,") {
            continue;
        }
        let fields: Vec<&str> = row.split(',').map(str::trim).collect();
        if fields.len() < 4 {
            return Err(ReplayError::Truncated {
                line,
                fields: fields.len(),
            });
        }
        let at = fields[0]
            .parse::<u64>()
            .map_err(|_| ReplayError::BadTimestamp {
                line,
                value: fields[0].to_string(),
            })?;
        if let Some(p) = prev {
            if at < p {
                return Err(ReplayError::NonMonotonic {
                    line,
                    prev: p,
                    now: at,
                });
            }
        }
        let lba = fields[1].parse::<u64>().map_err(|_| ReplayError::BadLba {
            line,
            value: fields[1].to_string(),
        })?;
        // Parse the size signed first so `-4096` reports as a bad size,
        // not a generic integer failure; zero is equally unusable.
        let bytes = match fields[2].parse::<i64>() {
            Ok(n) if n > 0 => n as u64,
            _ => {
                return Err(ReplayError::BadSize {
                    line,
                    value: fields[2].to_string(),
                })
            }
        };
        let write = match fields[3] {
            "W" | "w" => true,
            "R" | "r" => false,
            other => {
                return Err(ReplayError::BadOp {
                    line,
                    value: other.to_string(),
                })
            }
        };
        prev = Some(at);
        records.push(ReplayRecord {
            at: Ns::from_ns(at),
            lba,
            bytes,
            write,
        });
    }
    if records.is_empty() {
        return Err(ReplayError::Empty);
    }
    Ok(records)
}

/// Renders records back to the CSV shape [`parse_csv`] accepts, header
/// included. `parse_csv(&format_csv(&r)) == Ok(r)` for any valid record
/// list — the property the replay proptests pin.
pub fn format_csv(records: &[ReplayRecord]) -> String {
    let mut out = String::from("timestamp,lba,size,r/w\n");
    for r in records {
        out.push_str(&format!(
            "{},{},{},{}\n",
            r.at.as_ns(),
            r.lba,
            r.bytes,
            if r.write { 'W' } else { 'R' }
        ));
    }
    out
}

/// Replays a parsed trace as a [`Workload`], looping when it runs out.
///
/// Trace LBAs are folded into the spec's address space (real traces
/// address terabyte volumes; the simulated data set is smaller), and the
/// inter-arrival gap to the next row becomes the op's think time, so a
/// closed-loop replay paces itself like the original capture while an
/// open-loop replay can use [`ReplayWorkload::records`] directly.
#[derive(Debug)]
pub struct ReplayWorkload {
    spec: WorkloadSpec,
    records: Vec<ReplayRecord>,
    pos: usize,
}

impl ReplayWorkload {
    /// Creates a replay of `records` over `spec`'s address space and
    /// content profile.
    ///
    /// # Panics
    ///
    /// Panics if `records` is empty.
    pub fn new(spec: WorkloadSpec, records: Vec<ReplayRecord>) -> Self {
        assert!(!records.is_empty(), "cannot replay an empty trace");
        ReplayWorkload {
            spec,
            records,
            pos: 0,
        }
    }

    /// Parses `csv` and builds the replay in one step.
    ///
    /// # Errors
    ///
    /// Propagates [`ReplayError`] from [`parse_csv`].
    pub fn from_csv(spec: WorkloadSpec, csv: &str) -> Result<Self, ReplayError> {
        Ok(Self::new(spec, parse_csv(csv)?))
    }

    /// The parsed records backing the replay.
    pub fn records(&self) -> &[ReplayRecord] {
        &self.records
    }

    /// Folds a trace LBA into the spec's address space so the whole span
    /// stays in bounds.
    fn fold(&self, lba: u64, blocks: u32) -> Lba {
        let n = self.spec.data_blocks();
        let blocks = blocks as u64;
        if blocks >= n {
            return Lba::new(0);
        }
        Lba::new(lba % (n - blocks + 1))
    }
}

impl Workload for ReplayWorkload {
    fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    fn next_op(&mut self) -> WorkloadOp {
        let r = self.records[self.pos];
        let next = (self.pos + 1) % self.records.len();
        // The capture's inter-arrival gap; zero at the loop seam.
        let think = if next > self.pos {
            self.records[next].at - r.at
        } else {
            Ns::ZERO
        };
        self.pos = next;
        let blocks = r
            .blocks()
            .min(self.spec.data_blocks().min(u32::MAX as u64) as u32);
        WorkloadOp {
            op: if r.write { Op::Write } else { Op::Read },
            lba: self.fold(r.lba, blocks),
            blocks,
            app_cpu: Ns::ZERO,
            think,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sysbench;

    const SAMPLE: &str = "timestamp,lba,size,r/w
# a comment
0,8000,4096,R
1500,8016,8192,W
1500,16384,4096,r
9000,8000,16384,w
";

    #[test]
    fn parses_the_documented_shape() {
        let r = parse_csv(SAMPLE).expect("valid trace");
        assert_eq!(r.len(), 4);
        assert_eq!(r[0].at, Ns::ZERO);
        assert!(!r[0].write);
        assert_eq!(r[1].blocks(), 2);
        assert!(r[1].write);
        assert_eq!(r[2].at, r[1].at, "equal timestamps are legal");
        assert_eq!(r[3].blocks(), 4);
    }

    #[test]
    fn round_trips_through_format() {
        let records = parse_csv(SAMPLE).expect("valid trace");
        assert_eq!(parse_csv(&format_csv(&records)), Ok(records));
    }

    #[test]
    fn typed_errors_name_the_line() {
        assert_eq!(
            parse_csv("0,1,4096\n"),
            Err(ReplayError::Truncated { line: 1, fields: 3 })
        );
        assert_eq!(
            parse_csv("x,1,4096,R\n"),
            Err(ReplayError::BadTimestamp {
                line: 1,
                value: "x".into()
            })
        );
        assert_eq!(
            parse_csv("5,1,4096,R\n4,1,4096,R\n"),
            Err(ReplayError::NonMonotonic {
                line: 2,
                prev: 5,
                now: 4
            })
        );
        assert_eq!(
            parse_csv("0,beef,4096,R\n"),
            Err(ReplayError::BadLba {
                line: 1,
                value: "beef".into()
            })
        );
        assert_eq!(
            parse_csv("0,1,-4096,W\n"),
            Err(ReplayError::BadSize {
                line: 1,
                value: "-4096".into()
            })
        );
        assert_eq!(
            parse_csv("0,1,0,W\n"),
            Err(ReplayError::BadSize {
                line: 1,
                value: "0".into()
            })
        );
        assert_eq!(
            parse_csv("0,1,4096,X\n"),
            Err(ReplayError::BadOp {
                line: 1,
                value: "X".into()
            })
        );
        assert_eq!(parse_csv("# nothing\n"), Err(ReplayError::Empty));
    }

    #[test]
    fn replay_folds_addresses_and_paces_by_gaps() {
        let spec = sysbench::spec();
        let mut wl = ReplayWorkload::from_csv(spec.clone(), SAMPLE).expect("valid trace");
        let n = spec.data_blocks();
        let ops: Vec<WorkloadOp> = (0..8).map(|_| wl.next_op()).collect();
        for op in &ops {
            assert!(op.lba.raw() + op.blocks as u64 <= n, "span stays in bounds");
        }
        assert_eq!(ops[0].think, Ns::from_ns(1_500));
        assert_eq!(ops[1].think, Ns::ZERO, "equal timestamps back to back");
        assert_eq!(ops[3].think, Ns::ZERO, "loop seam pauses nothing");
        assert_eq!(ops[0], ops[4], "replay loops deterministically");
    }

    #[test]
    #[should_panic(expected = "empty trace")]
    fn empty_replay_rejected() {
        let _ = ReplayWorkload::new(sysbench::spec(), Vec::new());
    }
}
