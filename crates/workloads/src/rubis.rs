//! RUBiS: the eBay-style e-commerce auction benchmark (paper Table 3,
//! Figures 14, 16).
//!
//! 300 clients browse/bid/sell against Apache + MySQL + PHP for 15
//! minutes: over 99 % reads — 799 K reads vs just 7 K writes (~4.6 KB /
//! ~20 KB) over 1.8 GB. Read-intensity caps I-CASH's write advantage
//! (Fusion-io is ~10 % faster), but online similarity detection still
//! stretches the 128 MB SSD budget further than the LRU and Dedup caches
//! (1.04× and 1.29× in the paper).

use crate::content::ContentProfile;
use crate::spec::WorkloadSpec;
use crate::workload::MixedWorkload;
use icash_storage::time::Ns;

/// The RUBiS workload specification.
pub fn spec() -> WorkloadSpec {
    WorkloadSpec {
        name: "RUBiS".into(),
        data_bytes: 1_843 << 20, // 1.8 GiB
        table4_reads: 799_000,
        table4_writes: 7_000,
        avg_read_bytes: 4_608,
        avg_write_bytes: 20_480,
        ssd_bytes: 128 << 20,
        vm_ram_bytes: 256 << 20,
        ram_bytes: 32 << 20,
        zipf_exponent: 1.8,
        active_fraction: 1.0,
        sequential_prob: 0.03,
        seq_run_ops: 6,
        ops_per_transaction: 10,
        app_cpu_per_op: Ns::from_us(6000),
        think_per_op: Ns::from_us(330000),
        profile: ContentProfile::web_content(),
        clients: 300,
        default_ops: 150000,
    }
}

/// A seeded RUBiS generator.
pub fn workload(seed: u64) -> MixedWorkload {
    MixedWorkload::new(spec(), seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_table_4() {
        let s = spec();
        assert_eq!(s.table4_ops(), 806_000);
        assert!(s.read_fraction() > 0.99, "RUBiS is read-intensive");
        assert_eq!(s.read_blocks(), 2);
    }
}
