//! The scenario engine: campaign-level workload drivers.
//!
//! The base benchmarks ([`run_benchmark`](crate::driver::run_benchmark))
//! are stationary and closed-loop. This module layers three scenario
//! drivers on top, all on the same seeded virtual-time contract:
//!
//! * **Block-trace replay** — [`replay`](crate::replay) parses
//!   MSR-Cambridge-style CSV and [`ScenarioKind::Replay`] pushes it
//!   through the closed-loop driver with the seeded content overlay.
//! * **Open-loop arrivals** — [`run_open_loop`] dispatches a deterministic
//!   [`ArrivalProcess`] schedule (diurnal sine, flash-crowd bursts)
//!   through an [`EventQueue`]; requests arrive whether or not a client
//!   is free, so queueing time becomes a real, measured quantity
//!   (emitted as `OpenLoopArrival` trace events).
//! * **Tenant-churn storms** — [`ChurnStorm`] scales
//!   [`MultiVm`](crate::vm::MultiVm) fleets with thousands of seeded VM
//!   create/clone/destroy events while the benchmark runs.
//!
//! Everything here is deterministic from `(config, seed)`: no wall clock,
//! no host randomness, byte-identical reports across thread counts.

#![deny(clippy::unwrap_used)]

use crate::arrivals::{ArrivalConfig, ArrivalProcess, EventQueue};
use crate::content::ContentModel;
use crate::spec::WorkloadSpec;
use crate::vm::MultiVm;
use crate::workload::Workload;
use icash_metrics::histogram::LatencyHistogram;
use icash_metrics::summary::RunSummary;
use icash_storage::block::BlockBuf;
use icash_storage::cpu::CpuModel;
use icash_storage::request::{Op, Request};
use icash_storage::system::{IoCtx, StorageSystem};
use icash_storage::time::Ns;
use icash_storage::trace::{TraceEvent, TraceKind, Tracer};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Which scenario driver a campaign cell runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScenarioKind {
    /// Replay an MSR-style block trace through the closed-loop driver.
    Replay,
    /// Open-loop arrivals from a virtual-time event queue.
    OpenLoop,
    /// A tenant-churn storm over a multi-VM fleet.
    Churn,
}

impl ScenarioKind {
    /// Every scenario kind, in campaign order.
    pub const ALL: [ScenarioKind; 3] = [
        ScenarioKind::Replay,
        ScenarioKind::OpenLoop,
        ScenarioKind::Churn,
    ];

    /// Parses the `ICASH_SCENARIO` spelling of a kind.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "replay" => Some(ScenarioKind::Replay),
            "open-loop" | "openloop" | "open_loop" => Some(ScenarioKind::OpenLoop),
            "churn" => Some(ScenarioKind::Churn),
            _ => None,
        }
    }

    /// The canonical knob spelling.
    pub fn name(&self) -> &'static str {
        match self {
            ScenarioKind::Replay => "replay",
            ScenarioKind::OpenLoop => "open-loop",
            ScenarioKind::Churn => "churn",
        }
    }
}

/// The shape of an open-loop arrival process (`ICASH_ARRIVAL`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalShape {
    /// Constant mean rate with exponential jitter.
    Stationary,
    /// Day/night sine swing over the run.
    Diurnal,
    /// Diurnal swing plus periodic flash-crowd bursts.
    Burst,
}

impl ArrivalShape {
    /// Every shape, in campaign order.
    pub const ALL: [ArrivalShape; 3] = [
        ArrivalShape::Stationary,
        ArrivalShape::Diurnal,
        ArrivalShape::Burst,
    ];

    /// Parses the `ICASH_ARRIVAL` spelling of a shape.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "stationary" => Some(ArrivalShape::Stationary),
            "diurnal" => Some(ArrivalShape::Diurnal),
            "burst" => Some(ArrivalShape::Burst),
            _ => None,
        }
    }

    /// The canonical knob spelling.
    pub fn name(&self) -> &'static str {
        match self {
            ArrivalShape::Stationary => "stationary",
            ArrivalShape::Diurnal => "diurnal",
            ArrivalShape::Burst => "burst",
        }
    }

    /// The canonical [`ArrivalConfig`] for this shape around `base_gap`.
    /// Periods are multiples of the gap so a few-hundred-op run still
    /// sweeps full day/night cycles and several burst windows.
    pub fn config(&self, base_gap: Ns) -> ArrivalConfig {
        let cfg = ArrivalConfig::stationary(base_gap);
        match self {
            ArrivalShape::Stationary => cfg,
            ArrivalShape::Diurnal => cfg.with_diurnal(0.9, base_gap * 256),
            ArrivalShape::Burst => cfg.with_diurnal(0.9, base_gap * 256).with_burst(
                base_gap * 512,
                base_gap * 64,
                16.0,
            ),
        }
    }
}

/// One scenario cell: which driver, and (for open loop) which arrivals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScenarioSpec {
    /// The driver.
    pub kind: ScenarioKind,
    /// Arrival shape; meaningful only for [`ScenarioKind::OpenLoop`].
    pub arrival: ArrivalShape,
}

/// Parameters of one open-loop run.
#[derive(Debug, Clone)]
pub struct OpenLoopConfig {
    /// The arrival process to dispatch.
    pub arrival: ArrivalConfig,
    /// Service slots: how many requests may be in flight at once. Unlike
    /// the closed loop, arrivals do not wait for a slot to *schedule* —
    /// only to start service, and the difference is the queued time.
    pub clients: u32,
    /// Total arrivals to dispatch.
    pub ops: u64,
    /// Arrivals excluded from latency statistics.
    pub warmup_ops: u64,
    /// Seed for the arrival schedule.
    pub seed: u64,
}

impl OpenLoopConfig {
    /// `ops` arrivals over `arrival`, 16 service slots, 10 % warmup.
    pub fn new(arrival: ArrivalConfig, ops: u64, seed: u64) -> Self {
        OpenLoopConfig {
            arrival,
            clients: 16,
            ops,
            warmup_ops: ops / 10,
            seed,
        }
    }
}

/// What the open-loop dispatcher observed, for oracle reconciliation
/// against the `OpenLoopArrival` trace stream.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpenLoopStats {
    /// Arrivals dispatched (one trace event each).
    pub arrivals: u64,
    /// Total time arrivals spent waiting for a free service slot.
    pub queued: Ns,
    /// Arrivals that waited at all.
    pub queued_arrivals: u64,
}

/// Runs `workload` open-loop against `system`: the arrival schedule, not
/// request completion, decides when each operation is issued. Think and
/// app-CPU times from the workload are ignored — pacing belongs to the
/// arrival process here. Latency is measured from the *scheduled arrival*
/// (so it includes queued time), which is what makes overload visible.
///
/// Every dispatch emits a [`TraceKind::OpenLoopArrival`] through `tracer`
/// carrying the queued/service split the oracle tests reconcile.
pub fn run_open_loop(
    system: &mut dyn StorageSystem,
    workload: &mut dyn Workload,
    model: &mut ContentModel,
    cfg: &OpenLoopConfig,
    tracer: &Tracer,
) -> (RunSummary, OpenLoopStats) {
    let mut cpu = CpuModel::xeon();
    let mut free = vec![Ns::ZERO; cfg.clients.max(1) as usize];
    let mut read_latency = LatencyHistogram::new();
    let mut write_latency = LatencyHistogram::new();
    let mut stats = OpenLoopStats::default();
    let mut end = Ns::ZERO;
    let mut steady_start = Ns::ZERO;
    // Offline image preparation, exactly like the closed-loop driver.
    {
        let universe = workload.address_universe();
        let mut ctx = IoCtx {
            backing: &*model,
            cpu: &mut cpu,
            collect_data: false,
        };
        system.preload(&universe, &mut ctx);
    }

    // The whole schedule goes through the event queue so dispatch order is
    // the queue's (time, id) order — the deterministic tie-break the
    // arrival proptests pin — not generation order.
    let mut queue = EventQueue::new();
    let mut process = ArrivalProcess::new(cfg.arrival.clone(), cfg.seed);
    for a in process.take(cfg.ops) {
        queue.push(a);
    }

    let mut n: u64 = 0;
    while let Some(arrival) = queue.pop() {
        let wop = workload.next_op();
        // Earliest-free service slot; the arrival never waits to be
        // *scheduled*, only to start service.
        let client = (0..free.len())
            .min_by_key(|&i| free[i])
            .expect("at least one client");
        let start = arrival.at.max(free[client]);
        let queued = start - arrival.at;
        stats.arrivals += 1;
        stats.queued += queued;
        if queued > Ns::ZERO {
            stats.queued_arrivals += 1;
        }
        tracer.emit(|| TraceEvent {
            at: arrival.at,
            kind: TraceKind::OpenLoopArrival {
                seq: arrival.id,
                lba: wop.lba.raw(),
                queued: queued.as_ns(),
            },
        });

        let req = match wop.op {
            Op::Read => Request::read_span(wop.lba, wop.blocks, start),
            Op::Write => {
                let payload: Vec<BlockBuf> = (0..wop.blocks as u64)
                    .map(|i| model.write_payload(wop.lba.plus(i)))
                    .collect();
                Request::write_span(wop.lba, start, payload)
            }
        };
        let completion = {
            let mut ctx = IoCtx {
                backing: &*model,
                cpu: &mut cpu,
                collect_data: false,
            };
            system.submit(&req, &mut ctx)
        };

        // Response time from the scheduled arrival: queueing included.
        let latency = completion.finished - arrival.at;
        if n == cfg.warmup_ops {
            steady_start = arrival.at;
        }
        if n >= cfg.warmup_ops {
            match wop.op {
                Op::Read => read_latency.record(latency),
                Op::Write => write_latency.record(latency),
            }
        }
        free[client] = completion.finished;
        end = end.max(completion.finished);
        n += 1;
    }

    let end = {
        let mut ctx = IoCtx {
            backing: &*model,
            cpu: &mut cpu,
            collect_data: false,
        };
        system.flush(end, &mut ctx).max(end)
    };

    let report = system.report(end);
    let spec = workload.spec();
    let device_energy = report.device_energy;
    let cpu_energy = cpu.energy(end);
    let summary = RunSummary {
        system: report.name.clone(),
        workload: spec.name.clone(),
        ops: cfg.ops,
        transactions: cfg.ops / spec.ops_per_transaction.max(1),
        elapsed: end,
        steady_ops: cfg.ops.saturating_sub(cfg.warmup_ops),
        steady_elapsed: end.saturating_sub(steady_start),
        read_latency,
        write_latency,
        cpu_utilization: cpu.utilization(end),
        storage_cpu_utilization: if end == Ns::ZERO {
            0.0
        } else {
            (cpu.storage_busy().as_ns() as f64 / end.as_ns() as f64).min(1.0)
        },
        ssd_writes: report.ssd.as_ref().map(|s| s.writes).unwrap_or(0),
        energy_wh: (device_energy + cpu_energy).as_watt_hours(),
        report,
        wall_ns: 0, // filled in by the harness, which times the whole cell
    };
    (summary, stats)
}

/// Parameters of a tenant-churn storm.
#[derive(Debug, Clone, Copy)]
pub struct ChurnConfig {
    /// VMs booted before the run starts.
    pub initial_vms: u8,
    /// Hard cap on live VMs (≤ 255: the LBA tag is one byte).
    pub max_live: usize,
    /// Total churn events to apply over the run.
    pub events: u64,
    /// Operations between consecutive events.
    pub ops_per_event: u64,
}

/// What a storm actually did, for campaign assertions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChurnStats {
    /// VMs booted with a fresh spec.
    pub created: u64,
    /// VMs cloned from a live image (shared content lineage).
    pub cloned: u64,
    /// VMs destroyed.
    pub destroyed: u64,
    /// Events applied in total.
    pub applied: u64,
    /// Most VMs ever live at once.
    pub peak_live: usize,
}

/// A [`MultiVm`] fleet under a seeded create/clone/destroy storm: every
/// `ops_per_event` operations one weighted churn event fires, clones
/// favoured (cloud fleets grow by cloning images — the redundancy I-CASH
/// mines), until `events` have been applied. Fully deterministic from the
/// seed; the fleet never drains below one VM or grows past `max_live`.
#[derive(Debug)]
pub struct ChurnStorm {
    fleet: MultiVm,
    template: WorkloadSpec,
    cfg: ChurnConfig,
    rng: StdRng,
    ops_since_event: u64,
    stats: ChurnStats,
}

impl ChurnStorm {
    /// Builds a storm over an initial homogeneous fleet of
    /// `cfg.initial_vms` clones of `template`.
    ///
    /// # Panics
    ///
    /// Panics when the cap is outside `initial_vms..=255` or no events
    /// are requested.
    pub fn new(template: WorkloadSpec, cfg: ChurnConfig, seed: u64) -> Self {
        assert!(
            (cfg.initial_vms as usize..=255).contains(&cfg.max_live),
            "max_live must be in initial_vms..=255"
        );
        assert!(cfg.events > 0, "a storm needs at least one event");
        let t = template.clone();
        let fleet = MultiVm::homogeneous(cfg.initial_vms, seed, move |i| (t.clone(), i as u64));
        let mut storm = ChurnStorm {
            fleet,
            template,
            cfg,
            rng: StdRng::seed_from_u64(seed ^ 0x00C0_FFEE),
            ops_since_event: 0,
            stats: ChurnStats::default(),
        };
        storm.stats.peak_live = storm.fleet.vm_count();
        storm
    }

    /// The storm's tallies so far.
    pub fn stats(&self) -> &ChurnStats {
        &self.stats
    }

    /// Live VMs right now.
    pub fn live(&self) -> usize {
        self.fleet.vm_count()
    }

    /// Applies one weighted churn event: clone (50 %), create (20 %),
    /// destroy (30 %), with the guards that keep the fleet in
    /// `1..=max_live`.
    fn churn_once(&mut self) {
        let roll = self.rng.random_range(0u32..10);
        let seed = self.rng.random::<u64>();
        let live = self.fleet.vm_count();
        if roll < 5 && live < self.cfg.max_live {
            let ids = self.fleet.live_ids();
            let src = ids[self.rng.random_range(0..ids.len())];
            if self.fleet.clone_vm(src, seed).is_some() {
                self.stats.cloned += 1;
            }
        } else if roll < 7 && live < self.cfg.max_live {
            if self.fleet.create_vm(self.template.clone(), seed).is_some() {
                self.stats.created += 1;
            }
        } else if live > 1 {
            let ids = self.fleet.live_ids();
            let victim = ids[self.rng.random_range(0..ids.len())];
            if self.fleet.destroy_vm(victim) {
                self.stats.destroyed += 1;
            }
        }
        self.stats.applied += 1;
        self.stats.peak_live = self.stats.peak_live.max(self.fleet.vm_count());
    }
}

impl Workload for ChurnStorm {
    fn spec(&self) -> &WorkloadSpec {
        self.fleet.spec()
    }

    fn address_universe(&self) -> Vec<(u8, u64)> {
        self.fleet.address_universe()
    }

    fn next_op(&mut self) -> crate::workload::WorkloadOp {
        if self.stats.applied < self.cfg.events {
            self.ops_since_event += 1;
            if self.ops_since_event >= self.cfg.ops_per_event {
                self.ops_since_event = 0;
                self.churn_once();
            }
        }
        self.fleet.next_op()
    }
}

/// The canonical campaign storm: five VMs of a shrunken TPC-C image under
/// thousands of churn events (one per operation, capped at `events`),
/// fleet capped at 64 live VMs.
pub fn churn_storm(seed: u64, events: u64) -> ChurnStorm {
    let mut template = crate::tpcc::spec();
    // Small per-VM images keep the storm fast while the fleet scales; the
    // SSD/RAM budget shrinks with them so caching stays a real contest.
    template.data_bytes = 16 << 20;
    template.ssd_bytes = 8 << 20;
    template.ram_bytes = 8 << 20;
    template.active_fraction = 0.5;
    ChurnStorm::new(
        template,
        ChurnConfig {
            initial_vms: 5,
            max_live: 64,
            events: events.max(1),
            ops_per_event: 1,
        },
        seed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::content::ContentProfile;
    use crate::workload::MixedWorkload;
    use icash_storage::request::Completion;
    use icash_storage::system::SystemReport;

    /// A fixed-latency system: service takes 100 µs per request.
    #[derive(Debug)]
    struct Fixed;
    impl StorageSystem for Fixed {
        fn name(&self) -> &str {
            "Fixed"
        }
        fn submit(&mut self, req: &Request, _ctx: &mut IoCtx<'_>) -> Completion {
            Completion::at(req.at + Ns::from_us(100))
        }
        fn report(&self, _elapsed: Ns) -> SystemReport {
            SystemReport {
                name: "Fixed".into(),
                ..SystemReport::default()
            }
        }
    }

    fn small_workload(seed: u64) -> MixedWorkload {
        let mut spec = crate::tpcc::spec();
        spec.data_bytes = 16 << 20;
        MixedWorkload::new(spec, seed)
    }

    #[test]
    fn knob_spellings_round_trip() {
        for k in ScenarioKind::ALL {
            assert_eq!(ScenarioKind::parse(k.name()), Some(k));
        }
        for a in ArrivalShape::ALL {
            assert_eq!(ArrivalShape::parse(a.name()), Some(a));
        }
        assert_eq!(
            ScenarioKind::parse("openloop"),
            Some(ScenarioKind::OpenLoop)
        );
        assert_eq!(ScenarioKind::parse("chaos"), None);
        assert_eq!(ArrivalShape::parse("tsunami"), None);
    }

    #[test]
    fn open_loop_counts_reconcile_with_the_trace() {
        let (tracer, counts) = Tracer::counting();
        let mut wl = small_workload(5);
        let mut model = ContentModel::new(5, ContentProfile::database());
        let cfg = OpenLoopConfig::new(ArrivalShape::Stationary.config(Ns::from_us(200)), 400, 5);
        let (summary, stats) = run_open_loop(&mut Fixed, &mut wl, &mut model, &cfg, &tracer);
        assert_eq!(stats.arrivals, 400);
        assert_eq!(summary.ops, 400);
        let c = counts.lock().expect("sink");
        assert_eq!(c.open_loop_arrivals, 400, "one trace event per arrival");
        assert_eq!(c.open_loop_queued, stats.queued, "oracle and driver agree");
    }

    #[test]
    fn overload_queues_and_underload_does_not() {
        // 1 service slot, 100 µs service: arrivals every 50 µs overload
        // (gaps < service), every 400 µs underload.
        let run = |gap_us: u64| {
            let mut cfg = OpenLoopConfig::new(
                ArrivalConfig {
                    base_gap: Ns::from_us(gap_us),
                    diurnal: None,
                    burst: None,
                    jitter: false,
                },
                200,
                9,
            );
            cfg.clients = 1;
            let mut wl = small_workload(9);
            let mut model = ContentModel::new(9, ContentProfile::database());
            let (_, stats) =
                run_open_loop(&mut Fixed, &mut wl, &mut model, &cfg, &Tracer::disabled());
            stats
        };
        let overloaded = run(50);
        let underloaded = run(400);
        assert!(overloaded.queued_arrivals > 150, "overload must queue");
        assert!(overloaded.queued > Ns::ZERO);
        assert_eq!(underloaded.queued, Ns::ZERO, "underload must not queue");
    }

    #[test]
    fn open_loop_is_deterministic() {
        let run = || {
            let mut wl = small_workload(3);
            let mut model = ContentModel::new(3, ContentProfile::database());
            let cfg = OpenLoopConfig::new(ArrivalShape::Burst.config(Ns::from_us(100)), 300, 3);
            let (s, stats) =
                run_open_loop(&mut Fixed, &mut wl, &mut model, &cfg, &Tracer::disabled());
            (s.elapsed, s.read_latency, s.write_latency, stats)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn storm_applies_thousands_of_events_within_the_cap() {
        let mut storm = churn_storm(11, 2_000);
        for _ in 0..3_000 {
            let op = storm.next_op();
            assert!(op.lba.vm_id() >= 1, "every op carries a live VM tag");
        }
        let s = *storm.stats();
        assert_eq!(s.applied, 2_000, "the storm ran its full event budget");
        assert!(s.cloned > 0 && s.created > 0 && s.destroyed > 0);
        assert!(s.peak_live > 5, "the fleet grew past its initial size");
        assert!(s.peak_live <= 64, "and never past the cap");
        assert!(storm.live() >= 1);
    }

    #[test]
    fn storm_is_deterministic() {
        let run = || {
            let mut storm = churn_storm(4, 500);
            let ops: Vec<_> = (0..800).map(|_| storm.next_op()).collect();
            (ops, *storm.stats())
        };
        assert_eq!(run(), run());
    }
}
