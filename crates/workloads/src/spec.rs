//! Workload specifications (the paper's Tables 3–4).
//!
//! A [`WorkloadSpec`] captures both the measured block-level
//! characteristics of a benchmark (op counts, request sizes, data-set size
//! — Table 4) and the simulation parameters that reproduce its behaviour
//! (read fraction, locality, transaction shape, content profile).

use crate::content::ContentProfile;
use icash_storage::block::BLOCK_SIZE;
use icash_storage::time::Ns;
use serde::{Deserialize, Serialize};

/// Full description of one benchmark workload.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Benchmark name as in Table 3.
    pub name: String,
    /// Data-set size in bytes (Table 4 "Data Size").
    pub data_bytes: u64,
    /// Reads issued by the real benchmark (Table 4 "# of Read").
    pub table4_reads: u64,
    /// Writes issued by the real benchmark (Table 4 "# of Write").
    pub table4_writes: u64,
    /// Mean read request size in bytes (Table 4).
    pub avg_read_bytes: u64,
    /// Mean write request size in bytes (Table 4).
    pub avg_write_bytes: u64,
    /// SSD budget for I-CASH / LRU / Dedup in this experiment (§5).
    pub ssd_bytes: u64,
    /// Guest VM RAM (Table 4's last column): the page cache that sits in
    /// front of every storage system.
    pub vm_ram_bytes: u64,
    /// I-CASH RAM delta-buffer budget in this experiment (§5).
    pub ram_bytes: u64,
    /// Zipf exponent over the working set (0 = uniform).
    pub zipf_exponent: f64,
    /// Fraction of the data set the benchmark ever touches. Real traces
    /// tour a bounded region ("only 4.5–22.3% of the file system data were
    /// accessed over a week", paper §3.1); 1.0 = everything.
    pub active_fraction: f64,
    /// Probability an op starts a sequential run.
    pub sequential_prob: f64,
    /// Ops in one sequential run.
    pub seq_run_ops: u32,
    /// Host I/Os per application transaction.
    pub ops_per_transaction: u64,
    /// Application CPU work per I/O (drives CPU utilization).
    pub app_cpu_per_op: Ns,
    /// Client-side wait per I/O not spent on this machine's CPU (network
    /// round-trips, the separate workload-generator machine of §4.4).
    pub think_per_op: Ns,
    /// Content behaviour of this benchmark's data.
    pub profile: ContentProfile,
    /// Closed-loop client count the real benchmark used (16 SysBench
    /// threads, 100 LoadSim users, 300 RUBiS clients, ...).
    pub clients: u32,
    /// Default (scaled-down) ops for one simulated run; `--full` runs use
    /// the Table 4 totals.
    pub default_ops: u64,
}

impl WorkloadSpec {
    /// Fraction of operations that are reads, from the Table 4 counts.
    pub fn read_fraction(&self) -> f64 {
        let total = self.table4_reads + self.table4_writes;
        if total == 0 {
            0.5
        } else {
            self.table4_reads as f64 / total as f64
        }
    }

    /// Data-set size in 4 KB blocks.
    pub fn data_blocks(&self) -> u64 {
        self.data_bytes.div_ceil(BLOCK_SIZE as u64)
    }

    /// Mean read size in whole blocks (≥ 1).
    pub fn read_blocks(&self) -> u32 {
        (self.avg_read_bytes.div_ceil(BLOCK_SIZE as u64) as u32).max(1)
    }

    /// Mean write size in whole blocks (≥ 1).
    pub fn write_blocks(&self) -> u32 {
        (self.avg_write_bytes.div_ceil(BLOCK_SIZE as u64) as u32).max(1)
    }

    /// Total ops the real benchmark issued (Table 4).
    pub fn table4_ops(&self) -> u64 {
        self.table4_reads + self.table4_writes
    }

    /// The per-shard slice of this spec for an N-wide shard router: each
    /// shard owns `ceil(data_blocks / N)` blocks of the round-robin-striped
    /// block space and an even 1/N share of the SSD and RAM budgets.
    /// Slicing the budgets (rather than replicating them) keeps sharded
    /// comparisons like-for-like with the unsharded system — the aggregate
    /// hardware is the same, only its controller count changes. Floors keep
    /// degenerate slices buildable at high shard counts.
    pub fn shard_slice(&self, shards: u32) -> WorkloadSpec {
        let n = shards.max(1) as u64;
        let mut s = self.clone();
        s.data_bytes = self.data_blocks().div_ceil(n) * BLOCK_SIZE as u64;
        s.ssd_bytes = (self.ssd_bytes / n).max(1 << 20);
        s.ram_bytes = (self.ram_bytes / n).max(256 << 10);
        s
    }

    /// A proportionally scaled copy for quick runs: issuing `ops`
    /// operations against a data set (and SSD/RAM budgets) shrunk by
    /// `ops / table4_ops` preserves the cache-pressure and working-set
    /// dynamics of the full-length benchmark.
    pub fn scaled_to_ops(&self, ops: u64) -> WorkloadSpec {
        let factor = (ops as f64 / self.table4_ops().max(1) as f64).clamp(1.0 / 256.0, 1.0);
        let mut s = self.clone();
        s.data_bytes = ((self.data_bytes as f64 * factor) as u64).max(16 << 20);
        s.ssd_bytes = ((self.ssd_bytes as f64 * factor) as u64).max(2 << 20);
        s.vm_ram_bytes = ((self.vm_ram_bytes as f64 * factor) as u64).max(1 << 20);
        s.ram_bytes = ((self.ram_bytes as f64 * factor) as u64).max(1 << 20);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> WorkloadSpec {
        WorkloadSpec {
            name: "test".into(),
            data_bytes: 960 << 20,
            table4_reads: 619_000,
            table4_writes: 236_000,
            avg_read_bytes: 6_656,
            avg_write_bytes: 7_680,
            ssd_bytes: 128 << 20,
            vm_ram_bytes: 256 << 20,
            ram_bytes: 32 << 20,
            zipf_exponent: 1.1,
            active_fraction: 1.0,
            sequential_prob: 0.05,
            seq_run_ops: 8,
            ops_per_transaction: 10,
            app_cpu_per_op: Ns::from_us(500),
            think_per_op: Ns::from_us(500),
            profile: ContentProfile::database(),
            clients: 16,
            default_ops: 50_000,
        }
    }

    #[test]
    fn scaling_preserves_ratios() {
        let s = spec();
        let q = s.scaled_to_ops(s.table4_ops() / 10);
        let ratio = |a: u64, b: u64| a as f64 / b as f64;
        assert!((ratio(q.ssd_bytes, q.data_bytes) - ratio(s.ssd_bytes, s.data_bytes)).abs() < 0.02);
        assert!(q.data_bytes < s.data_bytes);
        // Scaling never inflates and clamps at the floor sizes.
        let full = s.scaled_to_ops(s.table4_ops() * 10);
        assert_eq!(full.data_bytes, s.data_bytes);
        let tiny = s.scaled_to_ops(1);
        assert!(tiny.data_bytes >= 16 << 20);
    }

    #[test]
    fn derived_quantities() {
        let s = spec();
        assert!((s.read_fraction() - 619.0 / 855.0).abs() < 1e-9);
        assert_eq!(s.data_blocks(), (960 << 20) / 4096);
        assert_eq!(s.read_blocks(), 2); // 6656 B → 2 blocks
        assert_eq!(s.write_blocks(), 2);
        assert_eq!(s.table4_ops(), 855_000);
    }

    #[test]
    fn shard_slices_cover_the_block_space_exactly_once() {
        let s = spec();
        for n in [1u32, 2, 3, 8, 64] {
            let slice = s.shard_slice(n);
            // Every shard can hold its largest possible inner span.
            assert!(slice.data_blocks() * n as u64 >= s.data_blocks());
            // Budgets split, they do not replicate (modulo the floors).
            assert!(slice.ssd_bytes <= s.ssd_bytes);
            assert!(slice.ssd_bytes >= s.ssd_bytes / n as u64);
        }
        // One shard is the identity on the block space.
        assert_eq!(s.shard_slice(1).data_blocks(), s.data_blocks());
    }

    #[test]
    fn zero_op_spec_has_neutral_read_fraction() {
        let mut s = spec();
        s.table4_reads = 0;
        s.table4_writes = 0;
        assert_eq!(s.read_fraction(), 0.5);
    }
}
