//! SPECsfs: the NFS file-server benchmark (paper Table 3, Figure 13).
//!
//! 100 NFS LOADs against an Ubuntu NFS server: the measured block stream is
//! write-dominated — 64 K reads vs 715 K writes (~6 KB / ~17 KB) over
//! 10 GB. With a 1 GB SSD and a 128 MB delta buffer, I-CASH matches
//! Fusion-io at a tenth of the flash (Figure 13) because the write flood is
//! absorbed as deltas; Dedup suffers its copy-on-write penalty here (the
//! paper reports I-CASH 28 % better).

use crate::content::ContentProfile;
use crate::spec::WorkloadSpec;
use crate::workload::MixedWorkload;
use icash_storage::time::Ns;

/// The SPECsfs workload specification.
pub fn spec() -> WorkloadSpec {
    WorkloadSpec {
        name: "SPECsfs".into(),
        data_bytes: 10_240 << 20, // 10 GiB
        table4_reads: 64_000,
        table4_writes: 715_000,
        avg_read_bytes: 6_144,
        avg_write_bytes: 17_408,
        ssd_bytes: 1 << 30,
        vm_ram_bytes: 512 << 20,
        ram_bytes: 128 << 20,
        zipf_exponent: 1.2,
        active_fraction: 1.0,
        sequential_prob: 0.10,
        seq_run_ops: 6,
        ops_per_transaction: 20,
        app_cpu_per_op: Ns::from_us(3000),
        think_per_op: Ns::from_us(33000),
        profile: ContentProfile::file_server(),
        clients: 100,
        default_ops: 100000,
    }
}

/// A seeded SPECsfs generator.
pub fn workload(seed: u64) -> MixedWorkload {
    MixedWorkload::new(spec(), seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_table_4() {
        let s = spec();
        assert_eq!(s.table4_ops(), 779_000);
        assert!(s.read_fraction() < 0.1, "SPECsfs is write-intensive");
        assert_eq!(s.write_blocks(), 5); // 17,408 B
    }
}
