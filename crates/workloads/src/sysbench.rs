//! SysBench: a multi-threaded OLTP benchmark over MySQL (paper Table 3,
//! Figures 6–7).
//!
//! The paper runs SysBench against a 4,000,000-row MySQL table with
//! 100,000 requests and 16 threads; Table 4 measures 619 K reads / 236 K
//! writes of ~6.6 KB / ~7.7 KB over a 960 MB data set. I-CASH gets 128 MB
//! of SSD and a 32 MB delta buffer (§5.1), and the run shows very strong
//! content locality: 85 % of blocks end up as associates of just 1 %
//! references.

use crate::content::ContentProfile;
use crate::spec::WorkloadSpec;
use crate::workload::MixedWorkload;
use icash_storage::time::Ns;

/// The SysBench workload specification.
pub fn spec() -> WorkloadSpec {
    WorkloadSpec {
        name: "SysBench".into(),
        data_bytes: 960 << 20,
        table4_reads: 619_000,
        table4_writes: 236_000,
        avg_read_bytes: 6_656,
        avg_write_bytes: 7_680,
        ssd_bytes: 128 << 20,
        vm_ram_bytes: 256 << 20,
        ram_bytes: 32 << 20,
        zipf_exponent: 1.8,
        active_fraction: 1.0,
        sequential_prob: 0.05,
        seq_run_ops: 8,
        ops_per_transaction: 9, // ~855 K block I/Os over ~100 K transactions
        app_cpu_per_op: Ns::from_us(2400),
        think_per_op: Ns::from_us(6500),
        profile: ContentProfile::database(),
        clients: 16,
        default_ops: 150000,
    }
}

/// A seeded SysBench generator.
pub fn workload(seed: u64) -> MixedWorkload {
    MixedWorkload::new(spec(), seed)
}

/// The HDD-pressure variant of SysBench used by the queue experiments:
/// write-heavy, every block unique (no similarity detection, so writes
/// become full-content log appends and evictions spill to the home area),
/// large mutations, uniform addressing with no sequential runs. Together
/// with a tightened RAM budget this keeps the mechanical disk on the
/// critical path, which stock SysBench — by design an SSD-friendly,
/// content-local workload — does not.
pub fn pressure_spec() -> WorkloadSpec {
    let mut s = spec();
    s.table4_reads = 1;
    s.table4_writes = 3;
    s.profile.unique_permille = 1000;
    s.profile.mutation_bytes = 3200;
    s.zipf_exponent = 0.0;
    s.sequential_prob = 0.0;
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_table_4() {
        let s = spec();
        assert_eq!(s.data_bytes, 960 << 20);
        assert_eq!(s.table4_ops(), 855_000);
        assert!((s.read_fraction() - 0.724).abs() < 0.01);
        assert_eq!(s.read_blocks(), 2);
    }
}
