//! TPC-C on Postgres via TPCC-UVA (paper Table 3, Figures 10–11, 15).
//!
//! On-line transaction processing over 5 warehouses with 10 clients each:
//! frequent small transactions committing constantly — 339 K reads / 156 K
//! writes (~13 KB / ~11 KB) over 1.2 GB. The heavy small-write commit
//! stream is where I-CASH's fast delta writes shine (Figure 11's 2.6 ms vs
//! Fusion-io's 6.6 ms application response time).

use crate::content::ContentProfile;
use crate::spec::WorkloadSpec;
use crate::workload::MixedWorkload;
use icash_storage::time::Ns;

/// The TPC-C workload specification.
pub fn spec() -> WorkloadSpec {
    WorkloadSpec {
        name: "TPC-C".into(),
        data_bytes: 1_228 << 20, // 1.2 GiB
        table4_reads: 339_000,
        table4_writes: 156_000,
        avg_read_bytes: 13_312,
        avg_write_bytes: 10_752,
        ssd_bytes: 128 << 20,
        vm_ram_bytes: 256 << 20,
        ram_bytes: 32 << 20,
        zipf_exponent: 1.7,
        active_fraction: 1.0,
        sequential_prob: 0.02,
        seq_run_ops: 4,
        ops_per_transaction: 12,
        app_cpu_per_op: Ns::from_us(7000),
        think_per_op: Ns::from_us(58000),
        profile: ContentProfile::database(),
        clients: 50,
        default_ops: 120000,
    }
}

/// A seeded TPC-C generator.
pub fn workload(seed: u64) -> MixedWorkload {
    MixedWorkload::new(spec(), seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_table_4() {
        let s = spec();
        assert_eq!(s.table4_ops(), 495_000);
        assert!((s.read_fraction() - 0.685).abs() < 0.01);
        assert_eq!(s.read_blocks(), 4);
        assert_eq!(s.write_blocks(), 3);
    }
}
