//! Block-trace record and replay.
//!
//! Generated op streams can be captured once and replayed bit-identically
//! against every storage system, removing generator nondeterminism from
//! A/B comparisons (the paper runs the same benchmark against all five
//! systems). The on-disk format is a simple little-endian binary record
//! stream.

use crate::spec::WorkloadSpec;
use crate::workload::{Workload, WorkloadOp};
use icash_storage::block::Lba;
use icash_storage::request::Op;
use icash_storage::time::Ns;
use std::io::{self, Read, Write};

const MAGIC: &[u8; 8] = b"ICASHTRC";

/// A recorded operation stream.
#[derive(Debug, Clone)]
pub struct Trace {
    ops: Vec<WorkloadOp>,
}

impl Trace {
    /// Captures `n` operations from a workload.
    pub fn record(workload: &mut dyn Workload, n: u64) -> Trace {
        Trace {
            ops: (0..n).map(|_| workload.next_op()).collect(),
        }
    }

    /// Wraps an existing op list.
    pub fn from_ops(ops: Vec<WorkloadOp>) -> Trace {
        Trace { ops }
    }

    /// Number of recorded operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The recorded operations.
    pub fn ops(&self) -> &[WorkloadOp] {
        &self.ops
    }

    /// Serialises the trace. A `&mut` reference works as the writer.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn save<W: Write>(&self, mut w: W) -> io::Result<()> {
        w.write_all(MAGIC)?;
        w.write_all(&(self.ops.len() as u64).to_le_bytes())?;
        for op in &self.ops {
            w.write_all(&[match op.op {
                Op::Read => 0u8,
                Op::Write => 1u8,
            }])?;
            w.write_all(&op.lba.raw().to_le_bytes())?;
            w.write_all(&op.blocks.to_le_bytes())?;
            w.write_all(&op.app_cpu.as_ns().to_le_bytes())?;
            w.write_all(&op.think.as_ns().to_le_bytes())?;
        }
        Ok(())
    }

    /// Deserialises a trace. A `&mut` reference works as the reader.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` for a bad magic or corrupt records.
    pub fn load<R: Read>(mut r: R) -> io::Result<Trace> {
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "bad magic"));
        }
        let mut buf8 = [0u8; 8];
        r.read_exact(&mut buf8)?;
        let count = u64::from_le_bytes(buf8);
        let mut ops = Vec::with_capacity(count.min(1 << 24) as usize);
        for _ in 0..count {
            let mut tag = [0u8; 1];
            r.read_exact(&mut tag)?;
            let op = match tag[0] {
                0 => Op::Read,
                1 => Op::Write,
                other => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("bad op tag {other}"),
                    ))
                }
            };
            r.read_exact(&mut buf8)?;
            let lba = Lba::new(u64::from_le_bytes(buf8));
            let mut buf4 = [0u8; 4];
            r.read_exact(&mut buf4)?;
            let blocks = u32::from_le_bytes(buf4);
            if blocks == 0 {
                return Err(io::Error::new(io::ErrorKind::InvalidData, "zero blocks"));
            }
            r.read_exact(&mut buf8)?;
            let app_cpu = Ns::from_ns(u64::from_le_bytes(buf8));
            r.read_exact(&mut buf8)?;
            let think = Ns::from_ns(u64::from_le_bytes(buf8));
            ops.push(WorkloadOp {
                op,
                lba,
                blocks,
                app_cpu,
                think,
            });
        }
        Ok(Trace { ops })
    }
}

impl Trace {
    /// Serialises the trace as CSV: `op,lba,blocks,app_cpu_ns,think_ns`
    /// with a header row — interchange with external analysis tools.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn save_csv<W: Write>(&self, mut w: W) -> io::Result<()> {
        writeln!(w, "op,lba,blocks,app_cpu_ns,think_ns")?;
        for op in &self.ops {
            writeln!(
                w,
                "{},{},{},{},{}",
                match op.op {
                    Op::Read => 'R',
                    Op::Write => 'W',
                },
                op.lba.raw(),
                op.blocks,
                op.app_cpu.as_ns(),
                op.think.as_ns()
            )?;
        }
        Ok(())
    }

    /// Parses a CSV trace. Accepts the full five-column format written by
    /// [`Trace::save_csv`] and the minimal `op,lba,blocks` form produced
    /// by block-trace converters (missing columns default to zero). Lines
    /// starting with `#` and the header row are skipped.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` for malformed rows.
    pub fn load_csv<R: Read>(mut r: R) -> io::Result<Trace> {
        let mut text = String::new();
        r.read_to_string(&mut text)?;
        let bad = |line: usize, why: &str| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("csv line {}: {why}", line + 1),
            )
        };
        let mut ops = Vec::new();
        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') || line.starts_with("op,") {
                continue;
            }
            let fields: Vec<&str> = line.split(',').map(str::trim).collect();
            if fields.len() < 3 {
                return Err(bad(i, "expected at least op,lba,blocks"));
            }
            let op = match fields[0] {
                "R" | "r" => Op::Read,
                "W" | "w" => Op::Write,
                other => return Err(bad(i, &format!("unknown op {other:?}"))),
            };
            let lba = fields[1].parse::<u64>().map_err(|_| bad(i, "bad lba"))?;
            let blocks = fields[2]
                .parse::<u32>()
                .map_err(|_| bad(i, "bad block count"))?;
            if blocks == 0 {
                return Err(bad(i, "zero blocks"));
            }
            let parse_ns = |f: Option<&&str>| -> io::Result<Ns> {
                match f {
                    Some(v) => v
                        .parse::<u64>()
                        .map(Ns::from_ns)
                        .map_err(|_| bad(i, "bad nanosecond field")),
                    None => Ok(Ns::ZERO),
                }
            };
            ops.push(WorkloadOp {
                op,
                lba: Lba::new(lba),
                blocks,
                app_cpu: parse_ns(fields.get(3))?,
                think: parse_ns(fields.get(4))?,
            });
        }
        Ok(Trace { ops })
    }
}

/// Replays a trace as a [`Workload`], looping when it runs out.
#[derive(Debug)]
pub struct TracePlayer {
    spec: WorkloadSpec,
    trace: Trace,
    universe: Vec<(u8, u64)>,
    pos: usize,
}

impl TracePlayer {
    /// Creates a player over `trace`, described by `spec`.
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty.
    pub fn new(spec: WorkloadSpec, trace: Trace) -> Self {
        assert!(!trace.is_empty(), "cannot replay an empty trace");
        let universe = vec![(0, spec.data_blocks())];
        TracePlayer {
            spec,
            trace,
            universe,
            pos: 0,
        }
    }

    /// Overrides the address universe (multi-VM traces).
    pub fn with_universe(mut self, universe: Vec<(u8, u64)>) -> Self {
        self.universe = universe;
        self
    }
}

impl Workload for TracePlayer {
    fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    fn address_universe(&self) -> Vec<(u8, u64)> {
        self.universe.clone()
    }

    fn next_op(&mut self) -> WorkloadOp {
        let op = self.trace.ops[self.pos];
        self.pos = (self.pos + 1) % self.trace.len();
        op
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sysbench;

    #[test]
    fn save_load_roundtrip() {
        let mut wl = sysbench::workload(3);
        let trace = Trace::record(&mut wl, 500);
        let mut buf = Vec::new();
        trace.save(&mut buf).unwrap();
        let back = Trace::load(buf.as_slice()).unwrap();
        assert_eq!(back.len(), 500);
        assert_eq!(back.ops(), trace.ops());
    }

    #[test]
    fn corrupt_input_is_rejected() {
        assert!(Trace::load(&b"NOTMAGIC"[..]).is_err());
        let mut buf = Vec::new();
        Trace::from_ops(vec![WorkloadOp {
            op: Op::Read,
            lba: Lba::new(1),
            blocks: 1,
            app_cpu: Ns::ZERO,
            think: Ns::ZERO,
        }])
        .save(&mut buf)
        .unwrap();
        buf.truncate(buf.len() - 3); // chop a record
        assert!(Trace::load(buf.as_slice()).is_err());
    }

    #[test]
    fn player_replays_and_loops() {
        let mut wl = sysbench::workload(4);
        let trace = Trace::record(&mut wl, 3);
        let expected: Vec<WorkloadOp> = trace.ops().to_vec();
        let mut player = TracePlayer::new(sysbench::spec(), trace);
        for i in 0..7 {
            assert_eq!(player.next_op(), expected[i % 3]);
        }
    }

    #[test]
    fn csv_roundtrip() {
        let mut wl = sysbench::workload(8);
        let trace = Trace::record(&mut wl, 100);
        let mut buf = Vec::new();
        trace.save_csv(&mut buf).unwrap();
        let back = Trace::load_csv(buf.as_slice()).unwrap();
        assert_eq!(back.ops(), trace.ops());
    }

    #[test]
    fn csv_minimal_form_and_comments() {
        let text = "# converted from blktrace
op,lba,blocks,app_cpu_ns,think_ns
R,100,2
W,5,1
";
        let t = Trace::load_csv(text.as_bytes()).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.ops()[0].op, Op::Read);
        assert_eq!(t.ops()[0].lba, Lba::new(100));
        assert_eq!(t.ops()[0].blocks, 2);
        assert_eq!(t.ops()[1].op, Op::Write);
        assert_eq!(t.ops()[0].app_cpu, Ns::ZERO);
    }

    #[test]
    fn csv_rejects_malformed_rows() {
        assert!(Trace::load_csv(
            "X,1,1
"
            .as_bytes()
        )
        .is_err());
        assert!(Trace::load_csv(
            "R,abc,1
"
            .as_bytes()
        )
        .is_err());
        assert!(Trace::load_csv(
            "R,1,0
"
            .as_bytes()
        )
        .is_err());
        assert!(Trace::load_csv(
            "R,1
"
            .as_bytes()
        )
        .is_err());
    }

    #[test]
    #[should_panic(expected = "empty trace")]
    fn empty_trace_rejected() {
        let _ = TracePlayer::new(sysbench::spec(), Trace::from_ops(Vec::new()));
    }
}
