//! Multi-VM workloads (paper §3.2 case 2, Figures 15–16).
//!
//! Cloud servers run many similar virtual machines over one storage
//! system; the prototype tags each VM's block addresses with the VM id in
//! the high byte of the 64-bit LBA (§4.1). Here [`MultiVm`] interleaves N
//! per-VM generators; because the content model derives similarity families
//! from the VM-*stripped* offset, cloned images are near-identical across
//! VMs — the cross-image redundancy that lets I-CASH serve five TPC-C VMs
//! from one set of reference blocks (2.8× over pure SSD in Figure 15).

use crate::spec::WorkloadSpec;
use crate::workload::{MixedWorkload, Workload, WorkloadOp};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// N interleaved per-VM instances of one benchmark.
///
/// # Examples
///
/// ```
/// use icash_workloads::{tpcc, vm::MultiVm};
/// use icash_workloads::workload::Workload;
///
/// let mut wl = MultiVm::homogeneous(5, 42, |i| {
///     // Each VM runs TPC-C over its own (smaller) data set.
///     let mut spec = tpcc::spec();
///     spec.data_bytes /= 2;
///     (spec, i as u64)
/// });
/// let op = wl.next_op();
/// assert!((1..=5).contains(&op.lba.vm_id()));
/// ```
#[derive(Debug)]
pub struct MultiVm {
    pub(crate) vms: Vec<MixedWorkload>,
    pub(crate) spec: WorkloadSpec,
    rng: StdRng,
}

impl MultiVm {
    /// Builds `count` VMs; `make` returns each VM's spec and seed salt
    /// (VM ids start at 1 so the tag is visible in addresses).
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero or greater than 255.
    pub fn homogeneous(count: u8, seed: u64, make: impl Fn(u8) -> (WorkloadSpec, u64)) -> Self {
        assert!(count > 0, "need at least one VM");
        let mut vms = Vec::with_capacity(count as usize);
        let mut agg: Option<WorkloadSpec> = None;
        for i in 1..=count {
            let (spec, salt) = make(i);
            match &mut agg {
                None => {
                    let mut s = spec.clone();
                    s.name = format!("{}x{}VMs", s.name, count);
                    s.data_bytes *= count as u64;
                    agg = Some(s);
                }
                Some(s) => {
                    s.table4_reads += spec.table4_reads;
                    s.table4_writes += spec.table4_writes;
                }
            }
            vms.push(MixedWorkload::new(spec, seed ^ salt.wrapping_mul(0x9E37)).with_vm(i));
        }
        MultiVm {
            vms,
            spec: agg.expect("count > 0"),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Number of virtual machines.
    pub fn vm_count(&self) -> usize {
        self.vms.len()
    }

    /// Ids of the currently live VMs, in interleave order.
    pub fn live_ids(&self) -> Vec<u8> {
        self.vms.iter().map(|w| w.vm_id()).collect()
    }

    /// The lowest VM id in 1..=255 not currently live, if any.
    fn free_id(&self) -> Option<u8> {
        let live: std::collections::HashSet<u8> = self.vms.iter().map(|w| w.vm_id()).collect();
        (1..=u8::MAX).find(|id| !live.contains(id))
    }

    /// Boots a fresh VM running `spec`, returning its id — or `None` when
    /// all 255 id slots are live. Destroyed ids are reused lowest-first,
    /// so churn over a bounded fleet stays within the 8-bit tag space.
    pub fn create_vm(&mut self, spec: WorkloadSpec, seed: u64) -> Option<u8> {
        let id = self.free_id()?;
        self.vms
            .push(MixedWorkload::new(spec, seed ^ (id as u64).wrapping_mul(0x9E37)).with_vm(id));
        Some(id)
    }

    /// Clones VM `src` — same spec, fresh seed — returning the new id.
    /// Cloned images share a spec and hence a content lineage, which is
    /// exactly the cross-image redundancy I-CASH mines (paper §3.2).
    pub fn clone_vm(&mut self, src: u8, seed: u64) -> Option<u8> {
        let spec = self.vms.iter().find(|w| w.vm_id() == src)?.spec().clone();
        self.create_vm(spec, seed)
    }

    /// Shuts down VM `id`. Returns false when the id is not live or when
    /// it is the last VM — a fleet never drains to zero.
    pub fn destroy_vm(&mut self, id: u8) -> bool {
        if self.vms.len() <= 1 {
            return false;
        }
        match self.vms.iter().position(|w| w.vm_id() == id) {
            Some(i) => {
                self.vms.remove(i);
                true
            }
            None => false,
        }
    }
}

impl Workload for MultiVm {
    fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    fn address_universe(&self) -> Vec<(u8, u64)> {
        self.vms.iter().flat_map(|w| w.address_universe()).collect()
    }

    fn next_op(&mut self) -> WorkloadOp {
        // VMs compete for the device: pick one uniformly per op.
        let i = self.rng.random_range(0..self.vms.len());
        self.vms[i].next_op()
    }
}

/// The paper's five-TPC-C-VMs experiment (Figure 15, Table 4 row
/// "TPC-C 5VMs"): five VMs with 1–5 warehouses sharing one storage system,
/// 512 MB of SSD and 512 MB of delta RAM.
pub fn tpcc_five_vms(seed: u64) -> MultiVm {
    let mut wl = MultiVm::homogeneous(5, seed, |i| {
        let mut spec = crate::tpcc::spec();
        // Five cloned database VMs sharing one image lineage: equal-sized
        // address spaces, so hot offsets (and hence content families) line
        // up across VMs — the cross-image redundancy I-CASH exploits.
        spec.data_bytes = 1_065 << 20;
        // Five consolidated VMs multiply I/O pressure: thinner per-op think
        // and app time make the storage system, not the host CPU, the
        // binding constraint (the regime Figure 15 demonstrates).
        spec.app_cpu_per_op = icash_storage::time::Ns::from_us(400);
        spec.think_per_op = icash_storage::time::Ns::from_us(4_000);
        spec.active_fraction = 0.25;
        (spec, i as u64)
    });
    // Pin the aggregate to the measured Table 4 characteristics.
    wl.spec.name = "TPC-C 5VMs".into();
    wl.spec.data_bytes = 5_325 << 20; // 5.2 GiB
    wl.spec.table4_reads = 256_000;
    wl.spec.table4_writes = 153_000;
    wl.spec.avg_read_bytes = 23_552;
    wl.spec.avg_write_bytes = 23_040;
    wl.spec.ssd_bytes = 512 << 20;
    wl.spec.ram_bytes = 512 << 20;
    wl.spec.clients = 600;
    wl.spec.app_cpu_per_op = icash_storage::time::Ns::from_us(400);
    wl.spec.think_per_op = icash_storage::time::Ns::from_us(4_000);
    wl.spec.default_ops = 100_000;
    wl
}

/// The paper's five-RUBiS-VMs experiment (Figure 16, Table 4 row
/// "RUBiS 5VMs"): five auction sites with 20–24 items per page.
pub fn rubis_five_vms(seed: u64) -> MultiVm {
    let mut wl = MultiVm::homogeneous(5, seed, |i| {
        let mut spec = crate::rubis::spec();
        spec.data_bytes = 2_048 << 20; // each VM serves ~2 GB
        spec.app_cpu_per_op = icash_storage::time::Ns::from_us(300);
        spec.think_per_op = icash_storage::time::Ns::from_us(3_000);
        spec.active_fraction = 0.25;
        (spec, i as u64)
    });
    wl.spec.name = "RUBiS 5VMs".into();
    wl.spec.data_bytes = 10_240 << 20; // 10 GiB
    wl.spec.table4_reads = 3_396_000;
    wl.spec.table4_writes = 52_000;
    wl.spec.avg_read_bytes = 5_632;
    wl.spec.avg_write_bytes = 25_088;
    wl.spec.ssd_bytes = 512 << 20;
    wl.spec.ram_bytes = 512 << 20;
    wl.spec.clients = 600;
    wl.spec.app_cpu_per_op = icash_storage::time::Ns::from_us(300);
    wl.spec.think_per_op = icash_storage::time::Ns::from_us(3_000);
    wl.spec.default_ops = 120_000;
    wl
}

/// Rebuilds a [`MultiVm`] against a *scaled* aggregate spec: each inner VM
/// is shrunk by the same factor as the aggregate.
pub fn rescale(make: impl Fn(u64) -> MultiVm, seed: u64, scaled: &WorkloadSpec) -> MultiVm {
    let original = make(seed);
    let factor = scaled.data_bytes as f64 / original.spec.data_bytes.max(1) as f64;
    let count = original.vm_count() as u8;
    let inner_specs: Vec<WorkloadSpec> = original
        .vms
        .iter()
        .map(|w| {
            let mut s = w.spec().clone();
            s.data_bytes = ((s.data_bytes as f64 * factor) as u64).max(4 << 20);
            s
        })
        .collect();
    let mut wl = MultiVm::homogeneous(count, seed, |i| {
        (inner_specs[(i - 1) as usize].clone(), i as u64)
    });
    wl.spec = scaled.clone();
    wl
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tpcc;

    fn five_vms() -> MultiVm {
        MultiVm::homogeneous(5, 7, |i| {
            let mut spec = tpcc::spec();
            // The paper's five TPC-C VMs use 1–5 warehouses: scale data.
            spec.data_bytes = (i as u64) * (256 << 20);
            (spec, i as u64)
        })
    }

    #[test]
    fn ops_carry_their_vm_tag() {
        let mut wl = five_vms();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..2_000 {
            let op = wl.next_op();
            assert!((1..=5).contains(&op.lba.vm_id()));
            seen.insert(op.lba.vm_id());
        }
        assert_eq!(seen.len(), 5, "all VMs get traffic");
    }

    #[test]
    fn aggregate_spec_sums_counts() {
        let wl = five_vms();
        assert_eq!(wl.spec().table4_reads, 5 * tpcc::spec().table4_reads);
        assert_eq!(wl.vm_count(), 5);
        assert!(wl.spec().name.contains("5VMs"));
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_vms_rejected() {
        let _ = MultiVm::homogeneous(0, 1, |_| (tpcc::spec(), 0));
    }

    #[test]
    fn churn_reuses_ids_and_keeps_the_last_vm() {
        let mut wl = five_vms();
        assert_eq!(wl.live_ids(), vec![1, 2, 3, 4, 5]);
        assert!(wl.destroy_vm(3));
        assert!(!wl.destroy_vm(3), "id 3 already gone");
        // Lowest free slot is reused, and a clone copies the source spec.
        assert_eq!(wl.create_vm(tpcc::spec(), 99), Some(3));
        assert_eq!(wl.clone_vm(5, 100), Some(6));
        assert_eq!(wl.live_ids(), vec![1, 2, 4, 5, 3, 6]);
        for id in [1, 2, 4, 5, 3] {
            assert!(wl.destroy_vm(id));
        }
        assert!(!wl.destroy_vm(6), "last VM is protected");
        assert_eq!(wl.vm_count(), 1);
    }
}
