//! The workload interface and the generic block-level generator.
//!
//! Every benchmark reduces to a stream of timed block operations with the
//! right read/write mix, request sizes, spatial/temporal locality, and
//! application compute. [`MixedWorkload`] generates such a stream from a
//! [`WorkloadSpec`]; the per-benchmark modules are thin constructors that
//! pin the parameters.

use crate::spec::WorkloadSpec;
use crate::zipf::Zipf;
use icash_storage::block::Lba;
use icash_storage::request::Op;
use icash_storage::time::Ns;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Hot-set granularity: popularity is assigned to aligned 16-block (64 KB)
/// extents, not single blocks, so multi-block requests stay inside hot
/// regions (real hot structures — B-tree pages, mailbox files — are bigger
/// than one block).
const EXTENT_BLOCKS: u64 = 16;

/// One generated block operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkloadOp {
    /// Read or write.
    pub op: Op,
    /// First block address (VM-tagged where applicable).
    pub lba: Lba,
    /// Consecutive blocks covered.
    pub blocks: u32,
    /// Application CPU work after this I/O (charged to the CPU model).
    pub app_cpu: Ns,
    /// Client-side wait before the next I/O (network, other tiers); spent
    /// but not charged to this machine's CPU.
    pub think: Ns,
}

/// A source of block operations.
pub trait Workload {
    /// The workload's specification.
    fn spec(&self) -> &WorkloadSpec;

    /// Generates the next operation.
    fn next_op(&mut self) -> WorkloadOp;

    /// The address spans this workload touches, as `(vm id, blocks)` —
    /// storage systems use this for offline image preparation.
    fn address_universe(&self) -> Vec<(u8, u64)> {
        vec![(0, self.spec().data_blocks())]
    }
}

/// The generic generator: Zipf temporal locality, occasional sequential
/// runs, Table 4 request-size mix.
///
/// # Examples
///
/// ```
/// use icash_workloads::sysbench;
/// use icash_workloads::workload::Workload;
///
/// let mut wl = sysbench::workload(7);
/// let op = wl.next_op();
/// assert!(op.blocks >= 1);
/// assert!(op.lba.raw() < wl.spec().data_blocks());
/// ```
#[derive(Debug)]
pub struct MixedWorkload {
    spec: WorkloadSpec,
    rng: StdRng,
    zipf: Zipf,
    seq_remaining: u32,
    seq_next: u64,
    vm: u8,
}

impl MixedWorkload {
    /// Creates a generator for `spec`, seeded deterministically.
    pub fn new(spec: WorkloadSpec, seed: u64) -> Self {
        let extents = Self::active_extents(&spec);
        let zipf = Zipf::new(extents, spec.zipf_exponent);
        MixedWorkload {
            spec,
            rng: StdRng::seed_from_u64(seed),
            zipf,
            seq_remaining: 0,
            seq_next: 0,
            vm: 0,
        }
    }

    /// Tags every generated address with a virtual-machine id (multi-VM
    /// experiments).
    pub fn with_vm(mut self, vm: u8) -> Self {
        self.vm = vm;
        self
    }

    /// The VM id tagged into this generator's addresses (0 = untagged).
    pub fn vm_id(&self) -> u8 {
        self.vm
    }

    /// Extents in the benchmark's active region.
    fn active_extents(spec: &WorkloadSpec) -> u64 {
        let blocks = (spec.data_blocks() as f64 * spec.active_fraction.clamp(0.01, 1.0)) as u64;
        blocks.div_ceil(EXTENT_BLOCKS).max(1)
    }

    /// Scrambles a Zipf extent rank over the active region so hot extents
    /// are spread out rather than clustered at offset zero.
    fn rank_to_extent(&self, rank: u64) -> u64 {
        let extents = Self::active_extents(&self.spec);
        rank.wrapping_mul(0x9E37_79B9_7F4A_7C15) % extents
    }

    fn pick_lba(&mut self, blocks: u32) -> Lba {
        let n = self.spec.data_blocks();
        let block = if self.seq_remaining > 0 {
            self.seq_remaining -= 1;
            let b = self.seq_next;
            self.seq_next = (self.seq_next + blocks as u64) % n;
            b
        } else if self.rng.random::<f64>() < self.spec.sequential_prob {
            // Start a sequential run at a *popular* extent: real scans
            // re-walk the same hot files, they do not stream cold data.
            self.seq_remaining = self.spec.seq_run_ops.saturating_sub(1);
            let rank = self.zipf.sample(&mut self.rng);
            let start = self.rank_to_extent(rank) * EXTENT_BLOCKS;
            self.seq_next = (start + blocks as u64) % n;
            start.min(n - 1)
        } else {
            let rank = self.zipf.sample(&mut self.rng);
            let extent = self.rank_to_extent(rank);
            // A random aligned position inside the hot extent that still
            // fits the whole request.
            let base = extent * EXTENT_BLOCKS;
            let span = EXTENT_BLOCKS.saturating_sub(blocks as u64).max(1);
            base + self.rng.random_range(0..span)
        };
        // Keep multi-block requests inside the data set.
        let clamped = block.min(n.saturating_sub(blocks as u64));
        Lba::new(clamped).with_vm(self.vm)
    }

    /// Request length: mean per Table 4, varied ±50 % uniformly.
    fn pick_blocks(&mut self, mean: u32) -> u32 {
        if mean <= 1 {
            return 1;
        }
        self.rng.random_range((mean / 2).max(1)..=mean + mean / 2)
    }
}

impl Workload for MixedWorkload {
    fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    fn address_universe(&self) -> Vec<(u8, u64)> {
        vec![(self.vm, self.spec.data_blocks())]
    }

    fn next_op(&mut self) -> WorkloadOp {
        let is_read = self.rng.random::<f64>() < self.spec.read_fraction();
        let (op, mean_blocks) = if is_read {
            (Op::Read, self.spec.read_blocks())
        } else {
            (Op::Write, self.spec.write_blocks())
        };
        let blocks = self.pick_blocks(mean_blocks);
        let lba = self.pick_lba(blocks);
        // Application compute and client think vary ±25 % around the spec.
        let jitter = |rng: &mut StdRng, base: u64| {
            if base == 0 {
                Ns::ZERO
            } else {
                Ns::from_ns(rng.random_range(base - base / 4..=base + base / 4).max(1))
            }
        };
        let app_cpu = jitter(&mut self.rng, self.spec.app_cpu_per_op.as_ns());
        let think = jitter(&mut self.rng, self.spec.think_per_op.as_ns());
        WorkloadOp {
            op,
            lba,
            blocks,
            app_cpu,
            think,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::content::ContentProfile;

    fn spec() -> WorkloadSpec {
        WorkloadSpec {
            name: "t".into(),
            data_bytes: 64 << 20,
            table4_reads: 700,
            table4_writes: 300,
            avg_read_bytes: 8192,
            avg_write_bytes: 4096,
            ssd_bytes: 8 << 20,
            vm_ram_bytes: 8 << 20,
            ram_bytes: 2 << 20,
            zipf_exponent: 1.0,
            active_fraction: 1.0,
            sequential_prob: 0.1,
            seq_run_ops: 4,
            ops_per_transaction: 5,
            app_cpu_per_op: Ns::from_us(100),
            think_per_op: Ns::from_us(100),
            profile: ContentProfile::database(),
            clients: 4,
            default_ops: 1_000,
        }
    }

    #[test]
    fn mix_tracks_read_fraction() {
        let mut wl = MixedWorkload::new(spec(), 1);
        let reads = (0..10_000).filter(|_| wl.next_op().op == Op::Read).count();
        let frac = reads as f64 / 10_000.0;
        assert!((0.65..0.75).contains(&frac), "read fraction = {frac}");
    }

    #[test]
    fn addresses_stay_in_range() {
        let mut wl = MixedWorkload::new(spec(), 2);
        let n = wl.spec().data_blocks();
        for _ in 0..10_000 {
            let op = wl.next_op();
            assert!(op.lba.offset() + op.blocks as u64 <= n);
            assert!(op.blocks >= 1);
        }
    }

    #[test]
    fn sequential_runs_occur() {
        let mut wl = MixedWorkload::new(spec(), 3);
        let mut sequential_pairs = 0;
        let mut prev_end = None;
        for _ in 0..10_000 {
            let op = wl.next_op();
            if prev_end == Some(op.lba.offset()) {
                sequential_pairs += 1;
            }
            prev_end = Some(op.lba.offset() + op.blocks as u64);
        }
        assert!(sequential_pairs > 100, "got {sequential_pairs}");
    }

    #[test]
    fn zipf_concentrates_accesses_by_extent() {
        let mut wl = MixedWorkload::new(spec(), 4);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..20_000 {
            *counts
                .entry(wl.next_op().lba.offset() / EXTENT_BLOCKS)
                .or_insert(0u64) += 1;
        }
        let mut sorted: Vec<u64> = counts.values().copied().collect();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let top20: u64 = sorted.iter().take(20).sum();
        assert!(
            top20 as f64 / 20_000.0 > 0.25,
            "hot extent share = {}",
            top20 as f64 / 20_000.0
        );
    }

    #[test]
    fn multiblock_requests_stay_inside_hot_extents() {
        // The regression the extent model fixes: a multi-block request must
        // not straddle a hot block and a cold one.
        let mut wl = MixedWorkload::new(spec(), 11);
        for _ in 0..5_000 {
            let op = wl.next_op();
            if op.blocks as u64 <= EXTENT_BLOCKS {
                let first_extent = op.lba.offset() / EXTENT_BLOCKS;
                let last_extent = (op.lba.offset() + op.blocks as u64 - 1) / EXTENT_BLOCKS;
                assert!(
                    last_extent - first_extent <= 1,
                    "request sprawls {} extents",
                    last_extent - first_extent + 1
                );
            }
        }
    }

    #[test]
    fn vm_tag_is_applied() {
        let mut wl = MixedWorkload::new(spec(), 5).with_vm(3);
        for _ in 0..100 {
            assert_eq!(wl.next_op().lba.vm_id(), 3);
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let mut a = MixedWorkload::new(spec(), 9);
        let mut b = MixedWorkload::new(spec(), 9);
        for _ in 0..100 {
            assert_eq!(a.next_op(), b.next_op());
        }
    }
}
