//! Zipf-distributed sampling for temporal locality.
//!
//! Disk traces exhibit strong temporal locality (paper §3.1, case 3): a
//! small hot set receives most accesses. The standard model is a Zipf
//! distribution over the working set; this module implements the
//! rejection-inversion sampler of Hörmann & Derflinger, which needs no
//! per-element tables and works for any exponent ≥ 0.

use rand::Rng;

/// A Zipf(n, s) sampler producing values in `0..n` where rank 0 is hottest.
///
/// # Examples
///
/// ```
/// use icash_workloads::zipf::Zipf;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let zipf = Zipf::new(1000, 1.0);
/// let mut rng = StdRng::seed_from_u64(7);
/// let mut hot = 0;
/// for _ in 0..1000 {
///     if zipf.sample(&mut rng) < 10 {
///         hot += 1;
///     }
/// }
/// // The hottest 1% of elements draw a large share of accesses.
/// assert!(hot > 150);
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    n: u64,
    exponent: f64,
    h_integral_x1: f64,
    h_integral_n: f64,
    s: f64,
}

impl Zipf {
    /// Creates a sampler over `0..n` with exponent `s` (0 = uniform,
    /// ~0.99–1.2 for storage traces).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `s` is negative/non-finite.
    pub fn new(n: u64, s: f64) -> Self {
        assert!(n > 0, "population must be nonzero");
        assert!(s.is_finite() && s >= 0.0, "exponent must be ≥ 0");
        let exponent = s;
        let h_integral_x1 = Self::h_integral(1.5, exponent) - 1.0;
        let h_integral_n = Self::h_integral(n as f64 + 0.5, exponent);
        let s_param = 2.0
            - Self::h_integral_inverse(
                Self::h_integral(2.5, exponent) - Self::h(2.0, exponent),
                exponent,
            );
        Zipf {
            n,
            exponent,
            h_integral_x1,
            h_integral_n,
            s: s_param,
        }
    }

    /// Population size.
    pub fn population(&self) -> u64 {
        self.n
    }

    /// Exponent.
    pub fn exponent(&self) -> f64 {
        self.exponent
    }

    /// ∫₁ˣ t^(−e) dt — the integral of the weight function.
    fn h_integral(x: f64, e: f64) -> f64 {
        if (e - 1.0).abs() < 1e-9 {
            x.ln()
        } else {
            (x.powf(1.0 - e) - 1.0) / (1.0 - e)
        }
    }

    /// The weight function x^(−e).
    fn h(x: f64, e: f64) -> f64 {
        x.powf(-e)
    }

    /// Inverse of [`Zipf::h_integral`].
    fn h_integral_inverse(y: f64, e: f64) -> f64 {
        if (e - 1.0).abs() < 1e-9 {
            y.exp()
        } else {
            (1.0 + (1.0 - e) * y).powf(1.0 / (1.0 - e))
        }
    }

    /// Draws one rank in `0..n` (0 = most popular).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.exponent == 0.0 {
            return rng.random_range(0..self.n);
        }
        loop {
            // u is uniform in (h_integral_n, h_integral_x1].
            let u =
                self.h_integral_n + rng.random::<f64>() * (self.h_integral_x1 - self.h_integral_n);
            let x = Self::h_integral_inverse(u, self.exponent);
            let k = (x + 0.5).floor().clamp(1.0, self.n as f64);
            if k - x <= self.s
                || u >= Self::h_integral(k + 0.5, self.exponent) - Self::h(k, self.exponent)
            {
                return k as u64 - 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn histogram(n: u64, s: f64, draws: usize) -> Vec<u64> {
        let zipf = Zipf::new(n, s);
        let mut rng = StdRng::seed_from_u64(42);
        let mut counts = vec![0u64; n as usize];
        for _ in 0..draws {
            counts[zipf.sample(&mut rng) as usize] += 1;
        }
        counts
    }

    #[test]
    fn ranks_stay_in_range() {
        for s in [0.0, 0.5, 1.0, 1.5] {
            let zipf = Zipf::new(100, s);
            let mut rng = StdRng::seed_from_u64(1);
            for _ in 0..10_000 {
                assert!(zipf.sample(&mut rng) < 100, "s = {s}");
            }
        }
    }

    #[test]
    fn matches_analytic_rank_zero_share() {
        // At s=1, P(rank 0) = 1 / H_100 ≈ 1/5.187 ≈ 0.1928.
        let counts = histogram(100, 1.0, 200_000);
        let frac = counts[0] as f64 / 200_000.0;
        assert!((0.17..0.22).contains(&frac), "rank-0 share = {frac}");
        assert!(counts[0] > counts[10]);
    }

    #[test]
    fn zero_exponent_is_uniform() {
        let counts = histogram(10, 0.0, 100_000);
        for &c in &counts {
            let frac = c as f64 / 100_000.0;
            assert!((0.07..0.13).contains(&frac), "uniform share = {frac}");
        }
    }

    #[test]
    fn heavier_exponent_concentrates_harder() {
        let light = histogram(1000, 0.8, 100_000);
        let heavy = histogram(1000, 1.3, 100_000);
        let top10 = |h: &[u64]| h[..10].iter().sum::<u64>();
        assert!(top10(&heavy) > top10(&light));
    }

    #[test]
    fn deterministic_under_seed() {
        let zipf = Zipf::new(1000, 1.1);
        let a: Vec<u64> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..100).map(|_| zipf.sample(&mut rng)).collect()
        };
        let b: Vec<u64> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..100).map(|_| zipf.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_population_rejected() {
        let _ = Zipf::new(0, 1.0);
    }

    #[test]
    fn single_element_population() {
        let zipf = Zipf::new(1, 1.0);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            assert_eq!(zipf.sample(&mut rng), 0);
        }
    }
}
