//! Property tests for the open-loop arrival machinery: the event queue
//! dispatches in strict `(time, id)` order for any push order, modulation
//! (diurnal, burst, jitter) never produces a negative inter-arrival gap,
//! and the same seed reproduces the same schedule event for event.

use icash_storage::time::Ns;
use icash_workloads::arrivals::{Arrival, ArrivalConfig, ArrivalProcess, EventQueue};
use proptest::prelude::*;

/// Arbitrary (possibly colliding) schedules with unique ids.
fn schedule() -> impl Strategy<Value = Vec<Arrival>> {
    prop::collection::vec(0u64..1_000, 0..200).prop_map(|ats| {
        ats.into_iter()
            .enumerate()
            .map(|(id, at)| Arrival {
                at: Ns::from_ns(at),
                id: id as u64,
            })
            .collect()
    })
}

/// Arbitrary arrival configs across the whole shape space: any base gap,
/// optional diurnal swing, optional burst, jitter on or off.
fn config() -> impl Strategy<Value = ArrivalConfig> {
    (
        1u64..1_000_000,                              // base gap
        (any::<bool>(), 0u64..100, 1u64..10_000_000), // diurnal on?, amp %, period
        (any::<bool>(), 2u64..1_000, 2u64..100),      // burst on?, every, factor
        any::<bool>(),                                // jitter
    )
        .prop_map(
            |(gap, (d_on, amp, period), (b_on, every, factor), jitter)| {
                let mut cfg = ArrivalConfig::stationary(Ns::from_ns(gap));
                cfg.jitter = jitter;
                if d_on {
                    cfg = cfg.with_diurnal(amp as f64 / 101.0, Ns::from_ns(period));
                }
                if b_on {
                    cfg = cfg.with_burst(Ns::from_ns(every), Ns::from_ns(every - 1), factor as f64);
                }
                cfg
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn queue_dispatch_is_sorted_by_time_then_id(mut arrivals in schedule(),
                                                shuffle_seed in any::<u64>()) {
        // Push in an arbitrary order; dispatch must come out (time, id)
        // sorted regardless.
        let mut order: Vec<usize> = (0..arrivals.len()).collect();
        let mut s = shuffle_seed;
        for i in (1..order.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            order.swap(i, (s >> 33) as usize % (i + 1));
        }
        let mut q = EventQueue::new();
        for &i in &order {
            q.push(arrivals[i]);
        }
        let dispatched: Vec<Arrival> = std::iter::from_fn(|| q.pop()).collect();
        arrivals.sort_by_key(|a| (a.at, a.id));
        prop_assert_eq!(dispatched, arrivals);
    }

    #[test]
    fn gaps_are_never_negative(cfg in config(), seed in any::<u64>()) {
        let mut p = ArrivalProcess::new(cfg, seed);
        let mut prev = Ns::ZERO;
        for (i, a) in p.take(500).into_iter().enumerate() {
            // Ns is unsigned, so "no negative gap" means monotone instants
            // and sequential ids — even under 99× burst modulation.
            prop_assert!(a.at >= prev, "arrival {i} went back in time");
            prop_assert_eq!(a.id, i as u64);
            prev = a.at;
        }
    }

    #[test]
    fn same_seed_is_event_for_event_identical(cfg in config(), seed in any::<u64>()) {
        let a = ArrivalProcess::new(cfg.clone(), seed).take(300);
        let b = ArrivalProcess::new(cfg, seed).take(300);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn rate_is_always_positive(cfg in config(), t in any::<u64>()) {
        let rate = cfg.rate_at(Ns::from_ns(t));
        prop_assert!(rate > 0.0, "rate {rate} at t={t} would stall the schedule");
    }
}
