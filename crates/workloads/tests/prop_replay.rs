//! Property tests for the MSR-style replay CSV parser: every valid record
//! list survives a format→parse round trip unchanged, and every class of
//! malformed row yields the right typed [`ReplayError`] — never a panic,
//! never a silent skip.

use icash_storage::time::Ns;
use icash_workloads::replay::{format_csv, parse_csv, ReplayError, ReplayRecord};
use proptest::prelude::*;

/// Arbitrary valid record lists: non-decreasing timestamps, positive
/// sizes, any LBA, either op.
fn records() -> impl Strategy<Value = Vec<ReplayRecord>> {
    prop::collection::vec(
        (
            0u64..1_000_000,
            any::<u64>(),
            1u64..(1u64 << 32),
            any::<bool>(),
        ),
        1..64,
    )
    .prop_map(|rows| {
        let mut t = 0u64;
        rows.into_iter()
            .map(|(gap, lba, bytes, write)| {
                t += gap;
                ReplayRecord {
                    at: Ns::from_ns(t),
                    lba,
                    bytes,
                    write,
                }
            })
            .collect()
    })
}

/// Letters that can never spell a valid op or a number — `r` and `w` (the
/// two accepted ops) are deliberately absent.
const NON_OP_LETTERS: &[u8] = b"abcdefghijklmnopqstuvxyz";

/// Arbitrary short words over an alphabet, as a strategy.
fn word(alphabet: &'static [u8], max: usize) -> impl Strategy<Value = String> {
    prop::collection::vec(0usize..alphabet.len(), 1..max)
        .prop_map(move |ix| ix.into_iter().map(|i| alphabet[i] as char).collect())
}

/// A single well-formed row rendered the way [`format_csv`] would.
fn row(at: u64, lba: u64, bytes: i64, op: &str) -> String {
    format!("{at},{lba},{bytes},{op}\n")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn valid_records_round_trip(records in records()) {
        let text = format_csv(&records);
        prop_assert_eq!(parse_csv(&text), Ok(records));
    }

    #[test]
    fn round_trip_survives_noise_rows(records in records()) {
        // Blank lines, comments, and a second header are all skippable
        // noise; the payload must come back identical.
        let mut text = String::from("# captured on a test array\n\n");
        text.push_str(&format_csv(&records));
        text.push_str("\ntimestamp,lba,size,r/w\n# trailing comment\n");
        prop_assert_eq!(parse_csv(&text), Ok(records));
    }

    #[test]
    fn negative_or_zero_sizes_are_typed_errors(at in 0u64..1_000_000,
                                               lba in any::<u64>(),
                                               magnitude in 0u64..(1u64 << 40)) {
        let bytes = -(magnitude as i64);
        let text = row(at, lba, bytes, "R");
        prop_assert_eq!(
            parse_csv(&text),
            Err(ReplayError::BadSize { line: 1, value: bytes.to_string() })
        );
    }

    #[test]
    fn backwards_timestamps_are_typed_errors(t0 in 1u64..1_000_000, back in 1u64..1_000) {
        // back >= 1 guarantees t1 < t0.
        let t1 = t0 - back.min(t0);
        let text = format!("{}{}", row(t0, 1, 4096, "W"), row(t1, 2, 4096, "R"));
        prop_assert_eq!(
            parse_csv(&text),
            Err(ReplayError::NonMonotonic { line: 2, prev: t0, now: t1 })
        );
    }

    #[test]
    fn bad_op_words_are_typed_errors(at in 0u64..1_000_000, op in word(NON_OP_LETTERS, 4)) {
        let text = row(at, 1, 4096, &op);
        prop_assert_eq!(
            parse_csv(&text),
            Err(ReplayError::BadOp { line: 1, value: op })
        );
    }

    #[test]
    fn truncated_rows_are_typed_errors(fields in 1usize..4) {
        let text = format!("{}\n", vec!["1"; fields].join(","));
        prop_assert_eq!(
            parse_csv(&text),
            Err(ReplayError::Truncated { line: 1, fields })
        );
    }

    #[test]
    fn arbitrary_text_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        // Whatever comes in, the parser returns Ok or a typed error whose
        // Display names the problem — it must never panic.
        let text = String::from_utf8_lossy(&bytes).into_owned();
        if let Err(e) = parse_csv(&text) {
            prop_assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn error_line_numbers_point_at_the_offender(good in records(),
                                                bad_lba in word(b"abcdefghij", 8)) {
        // Append one malformed row after N valid ones (plus the header):
        // the reported line number must be N + 2.
        let mut text = format_csv(&good);
        text.push_str(&format!("999999999,{bad_lba},4096,R\n"));
        prop_assert_eq!(
            parse_csv(&text),
            Err(ReplayError::BadLba { line: good.len() + 2, value: bad_lba })
        );
    }
}

#[test]
fn empty_trace_is_a_typed_error() {
    assert_eq!(parse_csv(""), Err(ReplayError::Empty));
    assert_eq!(parse_csv("# only noise\n\n"), Err(ReplayError::Empty));
}
