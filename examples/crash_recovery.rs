//! Crash recovery (paper §3.3): kill the power mid-run and rebuild the
//! controller by unrolling the HDD delta log against the SSD's reference
//! blocks. Flushed writes survive; RAM-buffered writes roll back to the
//! last persistent version — the paper's tunable flush-interval tradeoff.
//!
//! Run with: `cargo run --release --example crash_recovery`

use icash::core::{Icash, IcashConfig};
use icash::storage::cpu::CpuModel;
use icash::storage::{BlockBuf, IoCtx, Lba, Ns, Request, StorageSystem, ZeroSource};

fn tagged_block(tag: u8) -> BlockBuf {
    let mut v = vec![0x5A; 4096];
    v[0] = tag;
    v[2048] = tag.wrapping_mul(7);
    BlockBuf::from_vec(v)
}

fn main() {
    let config = IcashConfig::builder(4 << 20, 1 << 20, 32 << 20)
        .flush_interval(100) // flush dirty deltas every 100 I/Os
        .scan_interval(200)
        .build();
    let mut icash = Icash::new(config);
    let mut cpu = CpuModel::xeon();
    let backing = ZeroSource;
    let mut ctx = IoCtx::verifying(&backing, &mut cpu);

    // Phase 1: a burst of writes, periodically flushed by the controller.
    let mut now = Ns::ZERO;
    for i in 0..1_000u64 {
        let req = Request::write(Lba::new(i % 64), now, tagged_block((i % 251) as u8));
        now = icash.submit(&req, &mut ctx).finished;
    }
    // An explicit clean flush makes everything up to here durable.
    now = icash.flush(now, &mut ctx);
    println!("wrote 1,000 blocks, flushed at t={now}");

    // Phase 2: a few more writes that never get flushed...
    for i in 0..5u64 {
        let req = Request::write(Lba::new(i), now, tagged_block(0xFF));
        now = icash.submit(&req, &mut ctx).finished;
    }
    println!("wrote 5 unflushed blocks... pulling the plug");

    // 3. Power failure: volatile state is gone; SSD + HDD log survive.
    let mut recovered = icash.crash_and_recover();

    // Durable data reads back exactly; unflushed writes rolled back to the
    // last durable version (not garbage).
    let mut rolled_back = 0;
    for i in 0..64u64 {
        let req = Request::read(Lba::new(i), now);
        let completion = recovered.submit(&req, &mut ctx);
        now = completion.finished;
        let got = completion.data[0].as_slice();
        assert_eq!(got.len(), 4096, "block {i} unreadable after recovery");
        if i < 5 && got[0] != 0xFF {
            rolled_back += 1;
        }
    }
    println!("recovery complete: all 64 blocks readable");
    println!(
        "{rolled_back}/5 unflushed writes rolled back to their last durable version \
         (shorten flush_interval to shrink this window)"
    );
}
