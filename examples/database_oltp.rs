//! OLTP head-to-head: the SysBench experiment (paper Figures 6–7) in
//! miniature. Runs the same database workload against all five storage
//! architectures and prints the paper-style comparison.
//!
//! Run with: `cargo run --release --example database_oltp`

use icash::baselines::{DedupCache, LruCache, PureSsd, Raid0};
use icash::core::{Icash, IcashConfig};
use icash::metrics::report::{bar_chart, metric_rows};
use icash::metrics::RunSummary;
use icash::storage::StorageSystem;
use icash::workloads::content::ContentModel;
use icash::workloads::driver::{run_benchmark, DriverConfig};
use icash::workloads::trace::{Trace, TracePlayer};
use icash::workloads::{sysbench, MixedWorkload};

fn main() {
    // A scaled-down SysBench: same shape, laptop-friendly runtime.
    let spec = sysbench::spec().scaled_to_ops(20_000);

    // Record one op stream and replay it against every system.
    let mut source = MixedWorkload::new(spec.clone(), 42);
    let trace = Trace::record(&mut source, 20_000);

    let mut systems: Vec<Box<dyn StorageSystem>> = vec![
        Box::new(PureSsd::new(spec.data_bytes)),
        Box::new(Raid0::new(spec.data_bytes, 4)),
        Box::new(DedupCache::new(spec.ssd_bytes, spec.data_bytes)),
        Box::new(LruCache::new(spec.ssd_bytes, spec.data_bytes)),
        Box::new(Icash::new(
            IcashConfig::builder(spec.ssd_bytes, spec.ram_bytes, spec.data_bytes).build(),
        )),
    ];

    let mut summaries = Vec::new();
    for system in systems.iter_mut() {
        let mut player = TracePlayer::new(spec.clone(), trace.clone());
        let mut model = ContentModel::new(42, spec.profile.clone());
        let cfg = DriverConfig::new(20_000).clients(16);
        summaries.push(run_benchmark(
            system.as_mut(),
            &mut player,
            &mut model,
            &cfg,
        ));
    }

    print!(
        "{}",
        bar_chart(
            "SysBench (scaled): transaction rate",
            "tx/s",
            &metric_rows(&summaries, RunSummary::transactions_per_sec),
            true,
        )
    );
    print!(
        "{}",
        bar_chart(
            "SysBench (scaled): write response time",
            "us",
            &metric_rows(&summaries, RunSummary::write_mean_us),
            false,
        )
    );
    print!(
        "{}",
        bar_chart(
            "SysBench (scaled): SSD write requests (wear)",
            "writes",
            &metric_rows(&summaries, |s| s.ssd_writes as f64),
            false,
        )
    );
}
