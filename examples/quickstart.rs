//! Quickstart: build an I-CASH storage element, write some blocks, read
//! them back, and peek at what the controller did with them.
//!
//! Run with: `cargo run --release --example quickstart`

use icash::core::{Icash, IcashConfig};
use icash::storage::cpu::CpuModel;
use icash::storage::{BlockBuf, IoCtx, Lba, Ns, Request, StorageSystem, ZeroSource};

fn main() {
    // An I-CASH element: 16 MB of SSD for reference blocks, 8 MB of RAM
    // for deltas and cached data, over a 128 MB data set.
    let config = IcashConfig::builder(16 << 20, 8 << 20, 128 << 20)
        .scan_interval(500) // similarity scan every 500 I/Os
        .build();
    let mut icash = Icash::new(config);

    // The simulation context: a CPU-time model and the initial disk image
    // (all zeroes here; real workloads plug in a content model).
    let mut cpu = CpuModel::xeon();
    let backing = ZeroSource;
    let mut ctx = IoCtx::verifying(&backing, &mut cpu);

    // Write a family of similar blocks: a shared pattern with a small
    // per-block tweak — the content locality I-CASH feeds on.
    let mut now = Ns::ZERO;
    for i in 0..2_000u64 {
        let lba = Lba::new(i % 200);
        let mut content = vec![0xAB; 4096];
        content[0] = (i % 251) as u8; // the "update"
        content[100] = (i % 13) as u8;
        let req = Request::write(lba, now, BlockBuf::from_vec(content));
        now = icash.submit(&req, &mut ctx).finished;
    }

    // Read everything back and verify it survived the delta machinery.
    for i in 0..200u64 {
        let req = Request::read(Lba::new(i), now);
        let completion = icash.submit(&req, &mut ctx);
        now = completion.finished;
        assert_eq!(completion.data[0].as_slice().len(), 4096);
    }

    // What did the controller do?
    let stats = icash.stats();
    let (refs, assocs, indep) = stats.role_fractions();
    println!("after 2,000 writes and 200 reads:");
    println!(
        "  block roles: {:.0}% references, {:.0}% associates, {:.0}% independents",
        refs * 100.0,
        assocs * 100.0,
        indep * 100.0
    );
    println!(
        "  writes absorbed as deltas: {:.0}%",
        stats.delta_write_fraction() * 100.0
    );
    println!(
        "  reads served without the HDD: {:.0}%",
        stats.hdd_free_read_fraction() * 100.0
    );
    println!(
        "  SSD write requests: {} (an LRU cache would have paid one per write)",
        icash.ssd().stats().writes
    );
    println!("  virtual time elapsed: {now}, CPU busy: {}", cpu.busy());
}
