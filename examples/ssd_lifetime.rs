//! SSD lifetime projection (paper §5.3): fewer random writes means fewer
//! erases means a longer-lived flash device. Runs the same write-heavy
//! stream through I-CASH and through an LRU cache with the identical flash
//! budget, then projects device life from the measured erase rates.
//!
//! Run with: `cargo run --release --example ssd_lifetime`

use icash::baselines::LruCache;
use icash::core::{Icash, IcashConfig};
use icash::storage::StorageSystem;
use icash::workloads::content::ContentModel;
use icash::workloads::driver::{run_benchmark, DriverConfig};
use icash::workloads::specsfs;
use icash::workloads::trace::{Trace, TracePlayer};
use icash::workloads::MixedWorkload;

fn main() {
    // A write-flood: SPECsfs scaled down, its write-intensive mix intact.
    let mut spec = specsfs::spec().scaled_to_ops(20_000);
    spec.data_bytes = 128 << 20;
    spec.ssd_bytes = 8 << 20;
    spec.ram_bytes = 4 << 20;

    let mut source = MixedWorkload::new(spec.clone(), 5);
    let trace = Trace::record(&mut source, 20_000);

    let report = |name: &str, writes: u64, erases: u64, life: f64, hours: f64| {
        println!(
            "  {name:<8} {writes:>8} flash writes, {erases:>6} erases, \
             {life:.4}% of endurance in {hours:.2} simulated hours"
        );
    };

    println!("write-flood (SPECsfs mix) through the same 8 MB of flash:");

    let mut icash =
        Icash::new(IcashConfig::builder(spec.ssd_bytes, spec.ram_bytes, spec.data_bytes).build());
    let mut player = TracePlayer::new(spec.clone(), trace.clone());
    let mut model = ContentModel::new(5, spec.profile.clone());
    let cfg = DriverConfig::new(20_000).clients(32);
    let s1 = run_benchmark(&mut icash, &mut player, &mut model, &cfg);
    report(
        "I-CASH",
        icash.ssd().stats().writes,
        icash.ssd().wear().total_erases(),
        icash.ssd().wear().life_used() * 100.0,
        s1.elapsed.as_secs_f64() / 3600.0,
    );
    let icash_rate = icash.ssd().wear().life_used() / s1.elapsed.as_secs_f64().max(1e-9);

    let mut lru = LruCache::new(spec.ssd_bytes, spec.data_bytes);
    let mut player = TracePlayer::new(spec.clone(), trace.clone());
    let mut model = ContentModel::new(5, spec.profile.clone());
    let s2 = run_benchmark(&mut lru, &mut player, &mut model, &cfg);
    report(
        "LRU",
        lru.ssd().stats().writes,
        lru.ssd().wear().total_erases(),
        lru.ssd().wear().life_used() * 100.0,
        s2.elapsed.as_secs_f64() / 3600.0,
    );
    let lru_rate = lru.ssd().wear().life_used() / s2.elapsed.as_secs_f64().max(1e-9);

    if icash_rate > 0.0 {
        println!(
            "\nprojected device life: I-CASH wears the flash {:.1}x slower than the\n\
             LRU cache under the identical stream — the paper's §5.3 argument.",
            lru_rate / icash_rate
        );
    } else {
        println!("\nI-CASH produced no measurable wear on this run.");
    }
}
