//! VM consolidation: the paper's §3.2 motivating case. Five cloned virtual
//! machines run OLTP against one storage element; their images are
//! near-identical, so I-CASH serves all five from one set of reference
//! blocks while an address-keyed cache stores five copies.
//!
//! Compares I-CASH against the LRU SSD cache on the same flash budget.
//!
//! Run with: `cargo run --release --example vm_consolidation`

use icash::baselines::LruCache;
use icash::core::{Icash, IcashConfig};
use icash::metrics::RunSummary;
use icash::storage::StorageSystem;
use icash::workloads::content::ContentModel;
use icash::workloads::driver::{run_benchmark, DriverConfig};
use icash::workloads::tpcc;
use icash::workloads::vm::MultiVm;

fn run(system: &mut dyn StorageSystem, seed: u64) -> RunSummary {
    let mut workload = MultiVm::homogeneous(5, seed, |i| {
        let mut spec = tpcc::spec();
        spec.data_bytes = 64 << 20; // five cloned 64 MB databases
        spec.ssd_bytes = 16 << 20;
        spec.ram_bytes = 8 << 20;
        spec.app_cpu_per_op = icash::storage::Ns::from_us(300);
        spec.think_per_op = icash::storage::Ns::from_us(3_000);
        (spec, i as u64)
    });
    let mut model = ContentModel::new(seed, icash::workloads::ContentProfile::vm_images());
    let cfg = DriverConfig::new(20_000).clients(64);
    run_benchmark(system, &mut workload, &mut model, &cfg)
}

fn main() {
    let spec = {
        let mut s = tpcc::spec();
        s.data_bytes = 5 * (64 << 20);
        s
    };

    let mut icash = Icash::new(IcashConfig::builder(16 << 20, 8 << 20, spec.data_bytes).build());
    let icash_run = run(&mut icash, 7);

    let mut lru = LruCache::new(16 << 20, spec.data_bytes);
    let lru_run = run(&mut lru, 7);

    println!("five cloned TPC-C VMs on one storage element:");
    println!(
        "  I-CASH: {:>8.0} ops/s  (reads {:>7.0} us, writes {:>7.0} us, {} SSD writes)",
        icash_run.ops_per_sec(),
        icash_run.read_mean_us(),
        icash_run.write_mean_us(),
        icash_run.ssd_writes,
    );
    println!(
        "  LRU:    {:>8.0} ops/s  (reads {:>7.0} us, writes {:>7.0} us, {} SSD writes)",
        lru_run.ops_per_sec(),
        lru_run.read_mean_us(),
        lru_run.write_mean_us(),
        lru_run.ssd_writes,
    );
    let speedup = icash_run.ops_per_sec() / lru_run.ops_per_sec().max(1e-9);
    println!("  I-CASH speedup: {speedup:.1}x — one reference set serves all five images");

    let stats = icash.stats();
    let (r, a, _) = stats.role_fractions();
    println!(
        "  I-CASH block roles: {:.0}% references carry {:.0}% associates across VMs",
        r * 100.0,
        a * 100.0
    );
}
