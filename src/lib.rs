//! # icash — reproduction of "I-CASH: Intelligently Coupled Array of SSD
//! and HDD" (Ren & Yang, HPCA 2011)
//!
//! An umbrella crate re-exporting the whole workspace:
//!
//! * [`core`] — the I-CASH controller (the paper's contribution).
//! * [`storage`] — the simulation substrate: virtual time, HDD/SSD device
//!   models (FTL, GC, wear), CPU and energy accounting.
//! * [`delta`] — content signatures, the popularity Heatmap, and the delta
//!   compression codecs.
//! * [`baselines`] — the paper's four comparison architectures.
//! * [`workloads`] — content-aware generators for the paper's benchmarks
//!   and the closed-loop driver.
//! * [`metrics`] — histograms, run summaries, figure/table rendering.
//!
//! See the `examples/` directory for runnable scenarios and the
//! `icash-bench` crate for the binaries that regenerate every figure and
//! table of the paper's evaluation.
//!
//! ```
//! use icash::core::{Icash, IcashConfig};
//! use icash::storage::cpu::CpuModel;
//! use icash::storage::{BlockBuf, IoCtx, Lba, Ns, Request, StorageSystem, ZeroSource};
//!
//! let mut sys = Icash::new(IcashConfig::builder(1 << 20, 1 << 20, 8 << 20).build());
//! let mut cpu = CpuModel::xeon();
//! let backing = ZeroSource;
//! let mut ctx = IoCtx::verifying(&backing, &mut cpu);
//! let w = Request::write(Lba::new(1), Ns::ZERO, BlockBuf::filled(9));
//! let t = sys.submit(&w, &mut ctx).finished;
//! let r = Request::read(Lba::new(1), t);
//! assert_eq!(sys.submit(&r, &mut ctx).data[0], BlockBuf::filled(9));
//! ```

#![warn(missing_docs)]

pub use icash_baselines as baselines;
pub use icash_core as core;
pub use icash_delta as delta;
pub use icash_metrics as metrics;
pub use icash_storage as storage;
pub use icash_workloads as workloads;
