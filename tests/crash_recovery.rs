//! Cross-crate crash/recovery integration: run a real benchmark pattern,
//! crash mid-flight, recover, and verify durable data block by block.

use icash::core::{Icash, IcashConfig};
use icash::storage::cpu::CpuModel;
use icash::storage::request::Op;
use icash::storage::{IoCtx, Ns, Request, StorageSystem};
use icash::workloads::content::{ContentModel, ContentProfile};
use icash::workloads::{sysbench, MixedWorkload, Workload};

fn small_icash(data_bytes: u64) -> Icash {
    Icash::new(
        IcashConfig::builder(3 << 20, 1 << 20, data_bytes)
            .scan_interval(200)
            .scan_window(256)
            .flush_interval(100)
            .build(),
    )
}

#[test]
fn benchmark_pattern_survives_crash_after_clean_flush() {
    let mut spec = sysbench::spec();
    spec.data_bytes = 16 << 20;
    let mut workload = MixedWorkload::new(spec.clone(), 77);
    let mut model = ContentModel::new(77, ContentProfile::database());
    let mut system = small_icash(spec.data_bytes);
    let mut cpu = CpuModel::xeon();

    // Drive 2,000 ops of the real SysBench pattern by hand so we control
    // the crash point.
    let mut now = Ns::ZERO;
    for _ in 0..2_000 {
        let op = workload.next_op();
        let req = match op.op {
            Op::Read => Request::read_span(op.lba, op.blocks, now),
            Op::Write => {
                let payload = (0..op.blocks as u64)
                    .map(|i| model.write_payload(op.lba.plus(i)))
                    .collect();
                Request::write_span(op.lba, now, payload)
            }
        };
        let mut ctx = IoCtx::new(&model, &mut cpu);
        now = system.submit(&req, &mut ctx).finished;
    }
    // Clean flush, then crash.
    let mut ctx = IoCtx::new(&model, &mut cpu);
    now = system.flush(now, &mut ctx);
    let mut recovered = system.crash_and_recover();

    // Every block the workload ever wrote must read back as its latest
    // version (the oracle), block by block.
    let blocks = spec.data_blocks();
    let mut checked = 0;
    for b in 0..blocks {
        let lba = icash::storage::Lba::new(b);
        if model.version_of(lba) == 0 {
            continue; // never written; trivially durable
        }
        let req = Request::read(lba, now);
        let mut ctx = IoCtx::verifying(&model, &mut cpu);
        let completion = recovered.submit(&req, &mut ctx);
        now = completion.finished;
        assert_eq!(
            completion.data[0],
            model.current_content(lba),
            "lba {lba} corrupted across crash"
        );
        checked += 1;
    }
    assert!(checked > 100, "too few written blocks to be meaningful");
}

#[test]
fn double_crash_is_idempotent() {
    let mut model = ContentModel::new(5, ContentProfile::database());
    let mut system = small_icash(8 << 20);
    let mut cpu = CpuModel::xeon();

    let mut now = Ns::ZERO;
    for i in 0..500u64 {
        let lba = icash::storage::Lba::new(i % 50);
        let payload = model.write_payload(lba);
        let req = Request::write(lba, now, payload);
        let mut ctx = IoCtx::new(&model, &mut cpu);
        now = system.submit(&req, &mut ctx).finished;
    }
    let mut ctx = IoCtx::new(&model, &mut cpu);
    now = system.flush(now, &mut ctx);

    // Crash twice without any intervening writes.
    let recovered_once = system.crash_and_recover();
    let mut recovered_twice = recovered_once.crash_and_recover();

    for i in 0..50u64 {
        let lba = icash::storage::Lba::new(i);
        let req = Request::read(lba, now);
        let mut ctx = IoCtx::verifying(&model, &mut cpu);
        let completion = recovered_twice.submit(&req, &mut ctx);
        now = completion.finished;
        assert_eq!(
            completion.data[0],
            model.current_content(lba),
            "lba {lba} corrupted by second crash"
        );
    }
}
