//! Differential guard: arming a *disabled* fault plan must be a perfect
//! no-op. Every architecture's full JSON run report — timings, energy,
//! device counters, controller stats — must be bit-identical with and
//! without `FaultPlan::none()` installed, so the fault subsystem provably
//! costs nothing (and changes nothing) when switched off.

use icash::baselines::{DedupCache, LruCache, PureSsd, Raid0};
use icash::core::{Icash, IcashConfig};
use icash::storage::fault::FaultPlan;
use icash::storage::system::StorageSystem;
use icash::workloads::content::ContentModel;
use icash::workloads::driver::{run_benchmark, DriverConfig};
use icash::workloads::MixedWorkload;

const DATA: u64 = 16 << 20;
const SSD: u64 = 2 << 20;
const RAM: u64 = 512 << 10;
const OPS: u64 = 1_500;
const SEED: u64 = 0x1CA5_4001;

fn run_one(mut system: Box<dyn StorageSystem>) -> String {
    let mut spec = icash::workloads::sysbench::spec();
    spec.data_bytes = DATA;
    spec.ssd_bytes = SSD;
    spec.ram_bytes = RAM;
    let mut workload = MixedWorkload::new(spec, SEED);
    let mut model = ContentModel::new(SEED, icash::workloads::sysbench::spec().profile);
    let cfg = DriverConfig {
        clients: 8,
        ops: OPS,
        warmup_ops: OPS / 10,
        verify: false,
        guest_cache: false,
        cpu: None,
    };
    run_benchmark(system.as_mut(), &mut workload, &mut model, &cfg).to_json()
}

fn icash_cfg() -> IcashConfig {
    IcashConfig::builder(SSD, RAM, DATA).build()
}

#[test]
fn disabled_fault_plan_is_bit_identical_for_every_system() {
    let cases: Vec<(&str, Box<dyn StorageSystem>, Box<dyn StorageSystem>)> = vec![
        (
            "FusionIO",
            Box::new(PureSsd::new(DATA)),
            Box::new(PureSsd::new(DATA).with_fault_plan(&FaultPlan::none())),
        ),
        (
            "RAID0",
            Box::new(Raid0::new(DATA, 4)),
            Box::new(Raid0::new(DATA, 4).with_fault_plan(&FaultPlan::none())),
        ),
        (
            "Dedup",
            Box::new(DedupCache::new(SSD, DATA)),
            Box::new(DedupCache::new(SSD, DATA).with_fault_plan(&FaultPlan::none())),
        ),
        (
            "LRU",
            Box::new(LruCache::new(SSD, DATA)),
            Box::new(LruCache::new(SSD, DATA).with_fault_plan(&FaultPlan::none())),
        ),
        (
            "I-CASH",
            Box::new(Icash::new(icash_cfg())),
            Box::new(Icash::new(icash_cfg()).with_fault_plan(FaultPlan::none())),
        ),
    ];
    for (name, plain, armed) in cases {
        let baseline = run_one(plain);
        let with_plan = run_one(armed);
        assert_eq!(
            baseline, with_plan,
            "{name}: FaultPlan::none() changed the run report"
        );
        assert!(
            baseline.contains("\"faults\""),
            "{name}: report must expose fault counters"
        );
    }
}
