//! Property-based fault and crash testing: under arbitrary write
//! histories, seeded media-fault injection, and a crash (with torn
//! writes) at an arbitrary point, every block reads back as a version it
//! legitimately held — or as a *reported* media error. Never a splice,
//! never garbage, never a panic.

use icash::core::{Icash, IcashConfig};
use icash::storage::cpu::CpuModel;
use icash::storage::fault::{fault_roll, FaultPlan, HealthPolicy, HealthState};
use icash::storage::request::IoErrorKind;
use icash::storage::shard::ShardRouter;
use icash::storage::{BlockBuf, IoCtx, Lba, Ns, Request, StorageSystem, ZeroSource};
use proptest::prelude::*;
use std::collections::HashMap;

const SPAN: u64 = 64;

#[derive(Debug, Clone)]
enum SysOp {
    Write {
        lba: u64,
        tag: u8,
    },
    Read {
        lba: u64,
    },
    Flush,
    /// A full pipeline barrier: `sync` awaits the newest write ticket, so
    /// everything accepted so far must be durable when it returns.
    Barrier,
}

fn ops_strategy() -> impl Strategy<Value = Vec<SysOp>> {
    prop::collection::vec(
        prop_oneof![
            (0..SPAN, any::<u8>()).prop_map(|(lba, tag)| SysOp::Write { lba, tag }),
            (0..SPAN).prop_map(|lba| SysOp::Read { lba }),
            Just(SysOp::Flush),
            Just(SysOp::Barrier),
        ],
        1..200,
    )
}

/// Staging depths the crash properties sweep: the synchronous cycle, a
/// shallow pipeline, and a deep one that leaves many tickets in flight.
const DEPTHS: [u64; 3] = [1, 4, 16];

/// Content with intra-family similarity so I-CASH's machinery engages,
/// plus a tag making every version distinguishable.
fn block_for(tag: u8) -> BlockBuf {
    let mut v = vec![0xA7u8; 4096];
    v[3] = tag;
    v[1500] = tag.wrapping_mul(3);
    v[3000] = tag.wrapping_add(101);
    BlockBuf::from_vec(v)
}

fn base_config(depth: u64) -> IcashConfig {
    IcashConfig::builder(1 << 20, 256 << 10, 4 << 20)
        .scan_interval(40)
        .scan_window(64)
        .flush_interval(25)
        .log_blocks(1 << 14)
        .group_commit_depth(depth)
        .build()
}

fn pipelined_icash(depth: u64) -> Icash {
    Icash::new(base_config(depth))
}

fn faulty_icash(seed: u64, rate: f64, depth: u64) -> Icash {
    pipelined_icash(depth).with_fault_plan(
        FaultPlan::seeded(seed)
            .hdd_read_errors(rate)
            .hdd_write_errors(rate)
            .ssd_read_errors(rate)
            .torn_writes()
            .scrub_every(97),
    )
}

/// A width-`n` router of independently faulty I-CASH shards, each built
/// from the shard slice of the pinned config — the same construction the
/// sharded harness uses. Per-shard fault streams are seeded apart so a
/// crash tears each shard's log differently.
fn sharded_faulty(width: u32, seed: u64, rate: f64, depth: u64) -> ShardRouter<Icash> {
    let slice = base_config(depth).shard_slice(width);
    ShardRouter::new(
        (0..width)
            .map(|shard| {
                Icash::new(slice.clone()).with_fault_plan(
                    FaultPlan::seeded(seed ^ ((shard as u64 + 1) << 13))
                        .hdd_read_errors(rate)
                        .hdd_write_errors(rate)
                        .ssd_read_errors(rate)
                        .torn_writes()
                        .scrub_every(97),
                )
            })
            .collect(),
    )
}

/// Like [`block_for`], but stamped with the *outer* address. Shards store
/// striped inner addresses, so distinct outer blocks collide on the same
/// inner slot of different shards — a recovery that spliced state across
/// shards would surface a block stamped with a foreign outer lba, which no
/// per-lba version list contains.
fn shard_block_for(lba: u64, tag: u8) -> BlockBuf {
    let mut v = vec![0xA7u8; 4096];
    v[3] = tag;
    v[8..16].copy_from_slice(&lba.to_le_bytes());
    v[1500] = tag.wrapping_mul(3);
    v[3000] = tag.wrapping_add(101);
    BlockBuf::from_vec(v)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Live service under injected faults: a read either reports a media
    /// error or returns the block's latest content — nothing in between.
    #[test]
    fn faulty_reads_are_current_or_reported(
        ops in ops_strategy(),
        seed in 0u64..1000,
        rate_pick in 0usize..3,
        depth_pick in 0usize..3,
    ) {
        let rate = [1e-4, 1e-3, 1e-2][rate_pick];
        let mut system = faulty_icash(seed, rate, DEPTHS[depth_pick]);
        let mut cpu = CpuModel::xeon();
        let backing = ZeroSource;
        let mut oracle: HashMap<u64, BlockBuf> = HashMap::new();
        let mut now = Ns::ZERO;
        for op in &ops {
            match op {
                SysOp::Write { lba, tag } => {
                    let content = block_for(*tag);
                    oracle.insert(*lba, content.clone());
                    let req = Request::write(Lba::new(*lba), now, content);
                    let mut ctx = IoCtx::verifying(&backing, &mut cpu);
                    now = system.submit(&req, &mut ctx).finished;
                }
                SysOp::Read { lba } => {
                    let req = Request::read(Lba::new(*lba), now);
                    let mut ctx = IoCtx::verifying(&backing, &mut cpu);
                    let completion = system.submit(&req, &mut ctx);
                    prop_assert!(completion.finished >= now, "time ran backwards");
                    now = completion.finished;
                    if completion.failed(Lba::new(*lba)) {
                        continue;
                    }
                    let want = oracle.get(lba).cloned().unwrap_or_else(BlockBuf::zeroed);
                    prop_assert_eq!(&completion.data[0], &want, "lba {}", lba);
                }
                SysOp::Flush => {
                    let mut ctx = IoCtx::verifying(&backing, &mut cpu);
                    now = system.flush(now, &mut ctx);
                }
                SysOp::Barrier => {
                    let mut ctx = IoCtx::verifying(&backing, &mut cpu);
                    let ticket = system.write_ticket();
                    now = system.sync(now, &mut ctx);
                    prop_assert!(
                        system.flushed_ticket() >= ticket,
                        "sync returned with tickets still in flight"
                    );
                }
            }
        }
    }

    /// Crash anywhere — with torn writes, injected faults, and any staging
    /// depth (so up to K tickets are in flight, staged or mid-commit, when
    /// the power dies): recovery must bring every block back to *some*
    /// version it held (or report the read failed) — a torn log frame must
    /// never splice foreign bytes, whether it carried one entry or a whole
    /// group commit.
    #[test]
    fn crash_with_torn_writes_never_splices(
        ops in ops_strategy(),
        crash_at in 0usize..200,
        seed in 0u64..1000,
        rate_pick in 0usize..4,
        depth_pick in 0usize..3,
    ) {
        let rate = [0.0, 1e-4, 1e-3, 1e-2][rate_pick];
        let mut system = faulty_icash(seed, rate, DEPTHS[depth_pick]);
        let mut cpu = CpuModel::xeon();
        let backing = ZeroSource;
        let mut versions: HashMap<u64, Vec<BlockBuf>> = HashMap::new();
        let mut now = Ns::ZERO;
        for op in ops.iter().take(crash_at.min(ops.len())) {
            match op {
                SysOp::Write { lba, tag } => {
                    let content = block_for(*tag);
                    versions.entry(*lba).or_default().push(content.clone());
                    let req = Request::write(Lba::new(*lba), now, content);
                    let mut ctx = IoCtx::new(&backing, &mut cpu);
                    now = system.submit(&req, &mut ctx).finished;
                }
                SysOp::Read { lba } => {
                    let req = Request::read(Lba::new(*lba), now);
                    let mut ctx = IoCtx::new(&backing, &mut cpu);
                    now = system.submit(&req, &mut ctx).finished;
                }
                SysOp::Flush => {
                    let mut ctx = IoCtx::new(&backing, &mut cpu);
                    now = system.flush(now, &mut ctx);
                }
                SysOp::Barrier => {
                    let mut ctx = IoCtx::new(&backing, &mut cpu);
                    now = system.sync(now, &mut ctx);
                }
            }
        }
        let mut recovered = system.crash_and_recover();
        for (lba, mut held) in versions {
            held.push(BlockBuf::zeroed()); // the pre-history version
            let req = Request::read(Lba::new(lba), now);
            let mut ctx = IoCtx::verifying(&backing, &mut cpu);
            let completion = recovered.submit(&req, &mut ctx);
            now = completion.finished;
            if completion.failed(Lba::new(lba)) {
                continue;
            }
            prop_assert!(
                held.contains(&completion.data[0]),
                "lba {lba}: recovered to a value it never held"
            );
        }
    }

    /// The sharded engine under the same contract: crash with up to K
    /// tickets in flight spread across several shards (deep group commit
    /// plus torn writes on every shard), recover each shard independently
    /// with its own highest-generation-wins replay, and re-assemble the
    /// router. Every outer block must come back as a version *it* held (or
    /// a reported error) — content is stamped with the outer address, so a
    /// recovery that spliced state across shards (distinct outer blocks
    /// share inner slots on different shards) can never pass.
    #[test]
    fn cross_shard_crash_recovery_never_splices_across_shards(
        ops in ops_strategy(),
        crash_at in 0usize..200,
        seed in 0u64..1000,
        rate_pick in 0usize..3,
        depth_pick in 0usize..3,
        width_pick in 0usize..3,
    ) {
        let rate = [0.0, 1e-4, 1e-3][rate_pick];
        let width = [2u32, 3, 5][width_pick];
        let mut system = sharded_faulty(width, seed, rate, DEPTHS[depth_pick]);
        let mut cpu = CpuModel::xeon();
        let backing = ZeroSource;
        let mut versions: HashMap<u64, Vec<BlockBuf>> = HashMap::new();
        let mut now = Ns::ZERO;
        for op in ops.iter().take(crash_at.min(ops.len())) {
            match op {
                SysOp::Write { lba, tag } => {
                    let content = shard_block_for(*lba, *tag);
                    versions.entry(*lba).or_default().push(content.clone());
                    let req = Request::write(Lba::new(*lba), now, content);
                    let mut ctx = IoCtx::new(&backing, &mut cpu);
                    now = system.submit(&req, &mut ctx).finished;
                }
                SysOp::Read { lba } => {
                    let req = Request::read(Lba::new(*lba), now);
                    let mut ctx = IoCtx::new(&backing, &mut cpu);
                    now = system.submit(&req, &mut ctx).finished;
                }
                SysOp::Flush => {
                    let mut ctx = IoCtx::new(&backing, &mut cpu);
                    now = system.flush(now, &mut ctx);
                }
                SysOp::Barrier => {
                    let ticket = system.write_ticket();
                    let mut ctx = IoCtx::new(&backing, &mut cpu);
                    now = system.sync(now, &mut ctx);
                    prop_assert!(
                        system.flushed_ticket() >= ticket,
                        "cross-shard sync returned with tickets in flight"
                    );
                }
            }
        }
        // Power dies on every shard at once; each recovers alone, then the
        // router is rebuilt over the survivors.
        let mut recovered = ShardRouter::new(
            system
                .into_shards()
                .into_iter()
                .map(Icash::crash_and_recover)
                .collect(),
        );
        for (lba, mut held) in versions {
            held.push(BlockBuf::zeroed()); // the pre-history version
            let req = Request::read(Lba::new(lba), now);
            let mut ctx = IoCtx::verifying(&backing, &mut cpu);
            let completion = recovered.submit(&req, &mut ctx);
            now = completion.finished;
            if completion.failed(Lba::new(lba)) {
                continue;
            }
            prop_assert!(
                held.contains(&completion.data[0]),
                "outer lba {lba}: recovered to a value it never held \
                 (possible cross-shard splice)"
            );
        }
    }

    /// The barrier durability contract: any write covered by an
    /// `await_flush`/`sync` that returned before the crash survives it —
    /// recovery may only roll a block forward of its last barrier-covered
    /// version, never behind it. (Fault-free: the torn-write model tears
    /// the crash-interrupted append, which is a different, weaker
    /// contract tested above.)
    #[test]
    fn awaited_writes_survive_any_crash(
        ops in ops_strategy(),
        crash_at in 0usize..200,
        depth_pick in 0usize..3,
    ) {
        let mut system = pipelined_icash(DEPTHS[depth_pick]);
        let mut cpu = CpuModel::xeon();
        let backing = ZeroSource;
        // Per LBA: every version written, and the index of the newest one
        // covered by a completed barrier (none if never barriered).
        let mut versions: HashMap<u64, Vec<BlockBuf>> = HashMap::new();
        let mut durable_from: HashMap<u64, usize> = HashMap::new();
        let mut now = Ns::ZERO;
        for op in ops.iter().take(crash_at.min(ops.len())) {
            match op {
                SysOp::Write { lba, tag } => {
                    let content = block_for(*tag);
                    versions.entry(*lba).or_default().push(content.clone());
                    let req = Request::write(Lba::new(*lba), now, content);
                    let mut ctx = IoCtx::new(&backing, &mut cpu);
                    now = system.submit(&req, &mut ctx).finished;
                }
                SysOp::Read { lba } => {
                    let req = Request::read(Lba::new(*lba), now);
                    let mut ctx = IoCtx::new(&backing, &mut cpu);
                    now = system.submit(&req, &mut ctx).finished;
                }
                SysOp::Flush => {
                    let mut ctx = IoCtx::new(&backing, &mut cpu);
                    now = system.flush(now, &mut ctx);
                }
                SysOp::Barrier => {
                    let ticket = system.write_ticket();
                    let mut ctx = IoCtx::new(&backing, &mut cpu);
                    now = system.await_flush(ticket, now, &mut ctx);
                    prop_assert!(system.flushed_ticket() >= ticket);
                    for (lba, held) in &versions {
                        durable_from.insert(*lba, held.len() - 1);
                    }
                }
            }
        }
        let mut recovered = system.crash_and_recover();
        for (lba, held) in versions {
            let req = Request::read(Lba::new(lba), now);
            let mut ctx = IoCtx::verifying(&backing, &mut cpu);
            let completion = recovered.submit(&req, &mut ctx);
            now = completion.finished;
            let got = &completion.data[0];
            match durable_from.get(&lba) {
                // Barrier-covered: only the durable version or something
                // newer is acceptable — rolling back past the barrier
                // breaks the await_flush contract.
                Some(&idx) => prop_assert!(
                    held[idx..].contains(got),
                    "lba {lba}: rolled back behind its barrier"
                ),
                // Never barriered: any held version (or pre-history zeroes)
                // is a legitimate crash outcome.
                None => prop_assert!(
                    held.contains(got) || *got == BlockBuf::zeroed(),
                    "lba {lba}: recovered to a value it never held"
                ),
            }
        }
    }
}

/// Valid-or-typed oracle for the death properties: a read is acceptable if
/// it failed with a typed error, returned pre-history zeroes, or returned
/// any version the block legitimately acknowledged.
fn acceptable(versions: &HashMap<u64, Vec<BlockBuf>>, lba: u64, got: &BlockBuf) -> bool {
    *got == BlockBuf::zeroed() || versions.get(&lba).is_some_and(|held| held.contains(got))
}

/// Address span for the death-driving traffic. Deliberately wider than the
/// RAM delta buffer (unlike the scripted history's `SPAN`, which fits):
/// cold misses must keep touching the home disk, or an armed HDD death at
/// a given *device*-op count would take thousands of host ops to land.
const DRIVE_SPAN: u64 = 512;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Whole-device death at an arbitrary device-op in an arbitrary
    /// history — optionally followed by a crash mid-rebuild — is
    /// survivable. Every read during degraded service is a version the
    /// block legitimately held or a typed error; an HDD death fails
    /// writes fast with [`IoErrorKind::DeviceFailed`]; a replaced SSD
    /// rebuilds back to `Healthy` under live traffic and then serves
    /// fresh writes exactly; and the surviving controller passes full
    /// internal validation.
    #[test]
    fn device_death_anywhere_is_survivable(
        ops in ops_strategy(),
        death_at in 1u64..120,
        kill_hdd in any::<bool>(),
        crash_mid_rebuild in any::<bool>(),
        seed in 0u64..1000,
        depth_pick in 0usize..3,
    ) {
        let mut cfg = base_config(DEPTHS[depth_pick]);
        cfg.health = Some(HealthPolicy::default());
        let plan = if kill_hdd {
            FaultPlan::seeded(seed).hdd_dies_at(death_at)
        } else {
            FaultPlan::seeded(seed).ssd_dies_at(death_at)
        };
        let mut system = Icash::new(cfg).with_fault_plan(plan);
        let mut cpu = CpuModel::xeon();
        let backing = ZeroSource;
        let mut versions: HashMap<u64, Vec<BlockBuf>> = HashMap::new();
        let mut now = Ns::ZERO;
        for op in &ops {
            let hdd_down = system
                .report(now)
                .health
                .is_some_and(|h| h.hdd == HealthState::Failed);
            match op {
                SysOp::Write { lba, tag } => {
                    let content = block_for(*tag);
                    let req = Request::write(Lba::new(*lba), now, content.clone());
                    let mut ctx = IoCtx::verifying(&backing, &mut cpu);
                    let completion = system.submit(&req, &mut ctx);
                    now = completion.finished;
                    // Only acknowledged writes join the history: a typed
                    // refusal must leave the block on its old versions.
                    if !completion.failed(Lba::new(*lba)) {
                        versions.entry(*lba).or_default().push(content);
                    }
                }
                SysOp::Read { lba } => {
                    let req = Request::read(Lba::new(*lba), now);
                    let mut ctx = IoCtx::verifying(&backing, &mut cpu);
                    let completion = system.submit(&req, &mut ctx);
                    now = completion.finished;
                    if !completion.failed(Lba::new(*lba)) {
                        prop_assert!(
                            acceptable(&versions, *lba, &completion.data[0]),
                            "lba {}: degraded read returned a value it never held",
                            lba
                        );
                    }
                }
                // A barrier against a failed home disk is a liveness
                // question, not this property's (safety) contract: skip.
                SysOp::Flush if !hdd_down => {
                    let mut ctx = IoCtx::verifying(&backing, &mut cpu);
                    now = system.flush(now, &mut ctx);
                }
                SysOp::Barrier if !hdd_down => {
                    let mut ctx = IoCtx::verifying(&backing, &mut cpu);
                    now = system.sync(now, &mut ctx);
                }
                SysOp::Flush | SysOp::Barrier => {}
            }
        }
        // Keep traffic flowing until the armed death lands and the monitor
        // walks its ladder to `Failed` (the device-op clock only advances
        // on actual device accesses, so the bound is generous).
        let mut reached = false;
        for extra in 0..2_500u64 {
            let lba = fault_roll(seed, 0xD1E5, extra, 0) % DRIVE_SPAN;
            if fault_roll(seed, 0xD1E6, extra, lba) % 5 < 3 {
                let content = block_for((extra ^ lba) as u8);
                let req = Request::write(Lba::new(lba), now, content.clone());
                let mut ctx = IoCtx::verifying(&backing, &mut cpu);
                let completion = system.submit(&req, &mut ctx);
                now = completion.finished;
                if !completion.failed(Lba::new(lba)) {
                    versions.entry(lba).or_default().push(content);
                }
            } else {
                let req = Request::read(Lba::new(lba), now);
                let mut ctx = IoCtx::verifying(&backing, &mut cpu);
                let completion = system.submit(&req, &mut ctx);
                now = completion.finished;
                if !completion.failed(Lba::new(lba)) {
                    prop_assert!(
                        acceptable(&versions, lba, &completion.data[0]),
                        "lba {}: read under failing device returned foreign data",
                        lba
                    );
                }
            }
            let health = system.report(now).health.expect("health enabled");
            let state = if kill_hdd { health.hdd } else { health.ssd };
            if state == HealthState::Failed {
                reached = true;
                break;
            }
        }
        prop_assert!(reached, "armed death at device-op {} never reached Failed", death_at);

        if kill_hdd {
            // Fail-fast contract: with the home disk gone, every probe
            // write must bounce with a typed DeviceFailed error.
            for probe in 0..10u64 {
                let lba = fault_roll(seed, 0xDEAD, probe, 1) % SPAN;
                let req = Request::write(Lba::new(lba), now, block_for(probe as u8));
                let mut ctx = IoCtx::verifying(&backing, &mut cpu);
                let completion = system.submit(&req, &mut ctx);
                now = completion.finished;
                prop_assert!(
                    completion
                        .errors
                        .iter()
                        .any(|e| e.lba == Lba::new(lba) && e.kind == IoErrorKind::DeviceFailed),
                    "lba {}: write against a failed HDD was not refused",
                    lba
                );
            }
        } else {
            system.replace_ssd(now);
            if crash_mid_rebuild {
                // A little rebuild traffic, then the plug is pulled with
                // repopulation still pending.
                for extra in 0..20u64 {
                    let lba = fault_roll(seed, 0xC0A5, extra, 0) % DRIVE_SPAN;
                    let req = Request::read(Lba::new(lba), now);
                    let mut ctx = IoCtx::verifying(&backing, &mut cpu);
                    now = system.submit(&req, &mut ctx).finished;
                }
                system = system.crash_and_recover();
            }
            // Rebuild rides host I/O: drive until the monitor reports the
            // replacement healthy again.
            let mut healthy = false;
            for extra in 0..2_500u64 {
                let lba = fault_roll(seed, 0x4EA1, extra, 0) % DRIVE_SPAN;
                let req = Request::read(Lba::new(lba), now);
                let mut ctx = IoCtx::verifying(&backing, &mut cpu);
                let completion = system.submit(&req, &mut ctx);
                now = completion.finished;
                if !completion.failed(Lba::new(lba)) {
                    prop_assert!(
                        acceptable(&versions, lba, &completion.data[0]),
                        "lba {}: read during rebuild returned foreign data",
                        lba
                    );
                }
                let health = system.report(now).health.expect("health enabled");
                if health.ssd == HealthState::Healthy {
                    healthy = true;
                    break;
                }
            }
            prop_assert!(healthy, "replacement SSD never rebuilt to Healthy");
            // Fresh service on the rebuilt array is exact, not merely
            // valid: the death must leave no lasting wound.
            for probe in 0..8u64 {
                let lba = fault_roll(seed, 0xF4E5, probe, 2) % SPAN;
                let content = block_for(probe.wrapping_mul(37) as u8);
                let w = Request::write(Lba::new(lba), now, content.clone());
                let mut ctx = IoCtx::verifying(&backing, &mut cpu);
                let completion = system.submit(&w, &mut ctx);
                now = completion.finished;
                prop_assert!(!completion.failed(Lba::new(lba)), "healthy write refused");
                versions.entry(lba).or_default().push(content.clone());
                let r = Request::read(Lba::new(lba), now);
                let completion = system.submit(&r, &mut ctx);
                now = completion.finished;
                prop_assert!(!completion.failed(Lba::new(lba)), "healthy read failed");
                prop_assert_eq!(
                    &completion.data[0],
                    &content,
                    "post-rebuild readback was stale"
                );
            }
        }
        // Final sweep over everything ever acknowledged: valid-or-typed,
        // and the controller's internal structures still cross-check.
        for (&lba, _) in &versions {
            let req = Request::read(Lba::new(lba), now);
            let mut ctx = IoCtx::verifying(&backing, &mut cpu);
            let completion = system.submit(&req, &mut ctx);
            now = completion.finished;
            if !completion.failed(Lba::new(lba)) {
                prop_assert!(
                    acceptable(&versions, lba, &completion.data[0]),
                    "lba {}: final sweep read a value never held",
                    lba
                );
            }
        }
        system.debug_validate();
    }
}
