//! Golden replay: the in-repo MSR-style fixture driven through I-CASH,
//! with the resulting JSONL event stream pinned byte-for-byte. The
//! fixture locks the whole replay path at once — CSV parsing, LBA
//! folding, think-time pacing from the trace's own timestamps, content
//! synthesis for writes, and the controller's virtual-time schedule.
//!
//! Regenerate intentionally with
//! `ICASH_BLESS=1 cargo test --test golden_replay`.

use std::sync::{Arc, Mutex};

use icash::core::{Icash, IcashConfig};
use icash::metrics::trace::{parse_jsonl, JsonlSink, TraceProfile};
use icash::storage::trace::{TraceSink, Tracer};
use icash::storage::{Ns, StorageSystem};
use icash::workloads::content::ContentModel;
use icash::workloads::driver::{run_benchmark, DriverConfig};
use icash::workloads::replay::ReplayWorkload;
use icash::workloads::WorkloadSpec;

const FIXTURE: &str = include_str!("../crates/workloads/tests/golden/msr_sample.csv");
const GOLDEN: &str = include_str!("golden/msr_replay_64.jsonl");
const SEED: u64 = 0x5CE2_601D;

/// A shrunk TPC-C spec: the replay folds the trace's LBAs into this
/// data set and synthesizes database-profile content for its writes.
fn spec() -> WorkloadSpec {
    let mut spec = icash::workloads::tpcc::spec();
    spec.data_bytes = 16 << 20;
    spec
}

/// Replays every fixture row once through I-CASH with a single client
/// (so the event order is the trace order) and returns the JSONL.
fn record_replay() -> String {
    let spec = spec();
    let mut sys = Icash::new(
        IcashConfig::builder(1 << 20, 256 << 10, spec.data_bytes)
            .scan_interval(16)
            .scan_window(32)
            .flush_interval(8)
            .build(),
    );
    let sink = Arc::new(Mutex::new(JsonlSink::new()));
    sys.set_tracer(Tracer::to_sink(
        sink.clone() as Arc<Mutex<dyn TraceSink + Send>>
    ));
    let mut wl = ReplayWorkload::from_csv(spec.clone(), FIXTURE).expect("fixture parses");
    let ops = wl.records().len() as u64;
    let mut model = ContentModel::new(SEED, spec.profile.clone());
    let cfg = DriverConfig {
        clients: 1,
        ops,
        warmup_ops: 0,
        verify: false,
        guest_cache: false,
        cpu: None,
    };
    let summary = run_benchmark(&mut sys, &mut wl, &mut model, &cfg);
    assert_eq!(summary.ops, ops, "every fixture row must replay");
    drop(sys);
    let mut sink = sink.lock().expect("trace sink");
    sink.take_text()
}

#[test]
fn golden_msr_replay_is_stable() {
    let text = record_replay();
    if std::env::var("ICASH_BLESS").as_deref() == Ok("1") {
        let path = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/tests/golden/msr_replay_64.jsonl"
        );
        std::fs::write(path, &text).expect("bless golden fixture");
        eprintln!("blessed {path}");
        return;
    }
    assert!(!text.is_empty(), "the replay recorded no events");
    assert_eq!(
        text, GOLDEN,
        "the MSR replay event stream drifted from the golden fixture; if \
         the change is intentional, regenerate with ICASH_BLESS=1"
    );
}

#[test]
fn golden_replay_profiles_the_pinned_run() {
    let events = parse_jsonl(GOLDEN).expect("golden parses");
    let profile = TraceProfile::from_events(&events);
    assert_eq!(profile.requests, 64, "one span per fixture row");
    assert!(
        profile.ssd_programs + profile.hdd_writes > 0,
        "replayed writes reached the devices"
    );
    assert!(
        profile.ssd_reads + profile.hdd_reads + profile.ram_hits + profile.delta_decodes > 0,
        "replayed reads touched cache or media"
    );
    assert!(profile.request_time > Ns::ZERO, "spans advanced time");
    assert_eq!(
        profile.open_loop_arrivals, 0,
        "replay is closed-loop: its pacing lives in think time, not arrivals"
    );
}

#[test]
fn fixture_is_sixty_four_well_formed_rows() {
    let wl = ReplayWorkload::from_csv(spec(), FIXTURE).expect("fixture parses");
    assert_eq!(wl.records().len(), 64);
    let records = wl.records();
    for w in records.windows(2) {
        assert!(w[0].at <= w[1].at, "fixture timestamps are non-decreasing");
    }
    assert!(records.iter().any(|r| r.write) && records.iter().any(|r| !r.write));
}
