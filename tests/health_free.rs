//! Differential guard for the device-health subsystem: disabled, it must
//! be invisible (the default build carries no health section and behaves
//! exactly as before); enabled on a fault-free run, it must be inert —
//! same completions, same traced event stream, all counters zero, every
//! device `Healthy`. The chaos campaign (`run_chaos`) exercises the
//! machinery under injected deaths; this file pins down what it costs
//! when nothing is dying: nothing.

use icash::core::{Icash, IcashConfig};
use icash::storage::cpu::CpuModel;
use icash::storage::fault::{fault_roll, FaultPlan, HealthPolicy, HealthState};
use icash::storage::shard::ShardRouter;
use icash::storage::trace::Tracer;
use icash::storage::{BlockBuf, IoCtx, Lba, Ns, Request, StorageSystem, ZeroSource};

const DATA: u64 = 8 << 20;
const SSD: u64 = 1 << 20;
const RAM: u64 = 256 << 10;
const SPACE: u64 = 512;
const OPS: u64 = 600;
const SEED: u64 = 0x4EA1_7500;

fn config(health: Option<HealthPolicy>) -> IcashConfig {
    let mut cfg = IcashConfig::builder(SSD, RAM, DATA)
        .scan_interval(50)
        .scan_window(64)
        .flush_interval(20)
        .build();
    cfg.health = health;
    cfg
}

/// One deterministic mixed op (3:2 write:read over a hot block space);
/// returns the completion so callers can diff the two runs op by op.
fn step(sys: &mut dyn StorageSystem, ctx: &mut IoCtx<'_>, op: u64, t: Ns) -> (Ns, Vec<BlockBuf>) {
    let lba = fault_roll(SEED, 0x4EA1, op, 0) % SPACE;
    let req = if fault_roll(SEED, 0x4EA2, op, lba) % 5 < 3 {
        let mut bytes = vec![0x5A; 4096];
        bytes[..8].copy_from_slice(&op.to_le_bytes());
        Request::write(Lba::new(lba), t, BlockBuf::from_vec(bytes))
    } else {
        Request::read(Lba::new(lba), t)
    };
    let c = sys.submit(&req, ctx);
    (c.finished, c.data)
}

/// Runs the fixed workload and returns (per-op completions, traced JSONL).
fn run(mut sys: Icash) -> (Vec<(Ns, Vec<BlockBuf>)>, Vec<String>) {
    let (tracer, ring) = Tracer::ring(1 << 16);
    sys.set_tracer(tracer);
    let backing = ZeroSource;
    let mut cpu = CpuModel::xeon();
    let mut ctx = IoCtx::verifying(&backing, &mut cpu);
    let mut t = Ns::ZERO;
    let mut completions = Vec::with_capacity(OPS as usize);
    for op in 0..OPS {
        let (done, data) = step(&mut sys, &mut ctx, op, t);
        t = done;
        completions.push((done, data));
    }
    sys.debug_validate();
    let ring = ring.lock().expect("ring sink");
    assert_eq!(ring.dropped(), 0, "ring must hold the whole event stream");
    let jsonl = ring.events().iter().map(|e| e.to_json()).collect();
    (completions, jsonl)
}

#[test]
fn disabled_health_reports_no_health_section() {
    let (completions, _) = run(Icash::new(config(None)));
    let sys = Icash::new(config(None));
    assert!(
        sys.report(Ns::ZERO).health.is_none(),
        "a health-free build must not grow a health section in its report"
    );
    assert!(!completions.is_empty());
}

#[test]
fn enabled_health_is_inert_on_a_fault_free_run() {
    let (plain, plain_trace) = run(Icash::new(config(None)));
    let mut sys = Icash::new(config(Some(HealthPolicy::default())));
    let (tracer, ring) = Tracer::ring(1 << 16);
    sys.set_tracer(tracer);
    let backing = ZeroSource;
    let mut cpu = CpuModel::xeon();
    let mut ctx = IoCtx::verifying(&backing, &mut cpu);
    let mut t = Ns::ZERO;
    for (op, expected) in plain.iter().enumerate() {
        let (done, data) = step(&mut sys, &mut ctx, op as u64, t);
        t = done;
        assert_eq!(
            (&done, &data),
            (&expected.0, &expected.1),
            "op {op}: enabling health changed a fault-free completion"
        );
    }
    sys.debug_validate();
    let ring = ring.lock().expect("ring sink");
    assert_eq!(ring.dropped(), 0);
    let traced: Vec<String> = ring.events().iter().map(|e| e.to_json()).collect();
    assert_eq!(
        plain_trace, traced,
        "enabling health changed the fault-free traced event stream"
    );
    let health = sys.report(t).health.expect("health section when enabled");
    assert_eq!(health.ssd, HealthState::Healthy);
    assert_eq!(health.hdd, HealthState::Healthy);
    assert_eq!(health.transitions, 0, "no transitions without faults");
    assert_eq!(health.degraded_reads + health.degraded_writes, 0);
    assert_eq!(health.busy_rejections, 0);
    assert_eq!(health.retry_backoffs, 0);
    assert_eq!(health.rebuild_chunks, 0);
}

#[test]
fn shard_health_is_isolated() {
    // Only shard 0's SSD is armed to die: its monitor must walk to
    // `Failed` while shard 1 stays `Healthy` with zero transitions, and
    // the merged array report surfaces the worst state.
    let policy = HealthPolicy::default();
    let shards: Vec<Icash> = (0..2u64)
        .map(|s| {
            let mut cfg = config(Some(policy)).shard_slice(2);
            cfg.health = Some(policy);
            let plan = if s == 0 {
                FaultPlan::seeded(SEED + s).ssd_dies_at(40)
            } else {
                FaultPlan::seeded(SEED + s)
            };
            Icash::new(cfg).with_fault_plan(plan)
        })
        .collect();
    let mut sys = ShardRouter::new(shards);
    let backing = ZeroSource;
    let mut cpu = CpuModel::xeon();
    let mut ctx = IoCtx::verifying(&backing, &mut cpu);
    let mut t = Ns::ZERO;
    for op in 0..4_000u64 {
        let (done, _) = step(&mut sys, &mut ctx, op, t);
        t = done;
        let sick = sys.shards()[0].report(t).health.expect("shard 0 health");
        if sick.ssd == HealthState::Failed {
            break;
        }
    }
    let sick = sys.shards()[0].report(t).health.expect("shard 0 health");
    let well = sys.shards()[1].report(t).health.expect("shard 1 health");
    assert_eq!(
        sick.ssd,
        HealthState::Failed,
        "shard 0's armed SSD death must drive its monitor to Failed"
    );
    assert_eq!(well.ssd, HealthState::Healthy);
    assert_eq!(well.hdd, HealthState::Healthy);
    assert_eq!(
        well.transitions, 0,
        "a healthy shard must not inherit its neighbour's transitions"
    );
    let merged = sys.report(t).health.expect("merged health");
    assert_eq!(
        merged.ssd,
        HealthState::Failed,
        "the array-wide report surfaces the worst shard"
    );
}
