//! Whole-system data-integrity matrix: every storage architecture must
//! return exactly the bytes the workload last wrote, under every
//! benchmark's access pattern, verified against the content-model oracle
//! on every single read.

use icash::baselines::{DedupCache, LruCache, PureSsd, Raid0};
use icash::core::{Icash, IcashConfig};
use icash::storage::StorageSystem;
use icash::workloads::content::ContentModel;
use icash::workloads::driver::{run_benchmark, DriverConfig};
use icash::workloads::{
    hadoop, loadsim, rubis, specsfs, sysbench, tpcc, MixedWorkload, WorkloadSpec,
};

fn shrink(spec: &WorkloadSpec) -> WorkloadSpec {
    let mut s = spec.scaled_to_ops(2_000);
    // Keep tests fast: tiny working sets, tiny devices.
    s.data_bytes = 24 << 20;
    s.ssd_bytes = 3 << 20;
    s.ram_bytes = 1 << 20;
    s
}

fn systems(spec: &WorkloadSpec) -> Vec<Box<dyn StorageSystem>> {
    vec![
        Box::new(PureSsd::new(spec.data_bytes)),
        Box::new(Raid0::new(spec.data_bytes, 4)),
        Box::new(DedupCache::new(spec.ssd_bytes, spec.data_bytes)),
        Box::new(LruCache::new(spec.ssd_bytes, spec.data_bytes)),
        Box::new(Icash::new(
            IcashConfig::builder(spec.ssd_bytes, spec.ram_bytes, spec.data_bytes)
                .scan_interval(200)
                .scan_window(256)
                .flush_interval(100)
                .build(),
        )),
    ]
}

fn verify_matrix(spec: WorkloadSpec, seed: u64) {
    for mut system in systems(&spec) {
        let mut workload = MixedWorkload::new(spec.clone(), seed);
        let mut model = ContentModel::new(seed, spec.profile.clone());
        let cfg = DriverConfig::new(2_000).clients(4).verify();
        // The driver panics on any read that mismatches the oracle.
        let summary = run_benchmark(system.as_mut(), &mut workload, &mut model, &cfg);
        assert_eq!(summary.ops, 2_000, "{} lost operations", summary.system);
    }
}

#[test]
fn sysbench_pattern_is_lossless_on_all_systems() {
    verify_matrix(shrink(&sysbench::spec()), 11);
}

#[test]
fn tpcc_pattern_is_lossless_on_all_systems() {
    verify_matrix(shrink(&tpcc::spec()), 22);
}

#[test]
fn hadoop_pattern_is_lossless_on_all_systems() {
    // Large multi-block requests exercise the stream-write paths.
    verify_matrix(shrink(&hadoop::spec()), 33);
}

#[test]
fn loadsim_pattern_is_lossless_on_all_systems() {
    verify_matrix(shrink(&loadsim::spec()), 44);
}

#[test]
fn specsfs_pattern_is_lossless_on_all_systems() {
    // Write-flood: heaviest pressure on flush/eviction machinery.
    verify_matrix(shrink(&specsfs::spec()), 55);
}

#[test]
fn rubis_pattern_is_lossless_on_all_systems() {
    verify_matrix(shrink(&rubis::spec()), 66);
}
