//! Multi-VM integration: five tagged virtual machines over one storage
//! element — data isolation between VMs, cross-VM content sharing in
//! I-CASH, and oracle-verified reads throughout.

use icash::core::{Icash, IcashConfig};
use icash::storage::StorageSystem;
use icash::workloads::content::{ContentModel, ContentProfile};
use icash::workloads::driver::{run_benchmark, DriverConfig};
use icash::workloads::vm::MultiVm;
use icash::workloads::{tpcc, Workload};

fn small_vms(seed: u64) -> MultiVm {
    MultiVm::homogeneous(5, seed, |i| {
        let mut spec = tpcc::spec();
        spec.data_bytes = 16 << 20;
        spec.profile = ContentProfile::vm_images();
        (spec, i as u64)
    })
}

#[test]
fn five_vms_verify_against_the_oracle() {
    let mut workload = small_vms(3);
    let spec = workload.spec().clone();
    let mut system = Icash::new(
        IcashConfig::builder(4 << 20, 2 << 20, spec.data_bytes)
            .scan_interval(200)
            .scan_window(256)
            .flush_interval(100)
            .build(),
    );
    let mut model = ContentModel::new(3, ContentProfile::vm_images());
    let cfg = DriverConfig::new(3_000).clients(8).verify();
    // Verification asserts per-read correctness, including VM isolation:
    // vm2's block at offset X must never return vm1's version.
    let summary = run_benchmark(&mut system, &mut workload, &mut model, &cfg);
    assert_eq!(summary.ops, 3_000);
}

#[test]
fn icash_shares_references_across_cloned_vms() {
    let mut workload = small_vms(9);
    let spec = workload.spec().clone();
    let mut system = Icash::new(
        IcashConfig::builder(4 << 20, 2 << 20, spec.data_bytes)
            .scan_interval(200)
            .scan_window(256)
            .build(),
    );
    let mut model = ContentModel::new(9, ContentProfile::vm_images());
    let cfg = DriverConfig::new(4_000).clients(8);
    let _ = run_benchmark(&mut system, &mut workload, &mut model, &cfg);

    let stats = system.stats();
    let (refs, assocs, _) = stats.role_fractions();
    // Cloned images: far more associates than references — one reference
    // serves its siblings across every VM.
    assert!(
        assocs > refs,
        "expected reference sharing, got refs={refs:.2} assocs={assocs:.2}"
    );
    assert!(
        stats.delta_write_fraction() > 0.5,
        "most writes should be absorbed as deltas, got {:.2}",
        stats.delta_write_fraction()
    );
}

#[test]
fn vm_universe_covers_all_machines() {
    let workload = small_vms(1);
    let universe = workload.address_universe();
    assert_eq!(universe.len(), 5);
    let vms: Vec<u8> = universe.iter().map(|(vm, _)| *vm).collect();
    assert_eq!(vms, vec![1, 2, 3, 4, 5]);
    for (_, blocks) in universe {
        assert_eq!(blocks, (16 << 20) / 4096);
    }
}
