//! Write-pipeline differential gate: the staged, group-committed flush
//! path at `group_commit_depth = 1` must be **byte-identical** to the
//! pre-pipeline controller — same JSONL event stream, same counters, same
//! virtual completion times — across a scenario that exercises several
//! flush cycles, log fetches, eviction pressure, and explicit barriers.
//! The fixture was recorded before the pipeline refactor landed, so any
//! depth-1 drift (an extra trace event, a reordered generation stamp, a
//! changed flush timing) fails here.
//!
//! Regenerate intentionally with
//! `ICASH_REGEN_GOLDEN=1 cargo test -p icash --test pipeline`.

use icash::core::{Icash, IcashConfig, IcashConfigBuilder};
use icash::metrics::trace::JsonlSink;
use icash::storage::block::{BlockBuf, Lba};
use icash::storage::cpu::CpuModel;
use icash::storage::request::Request;
use icash::storage::system::{IoCtx, StorageSystem, ZeroSource};
use icash::storage::time::Ns;
use icash::storage::trace::{TraceSink, Tracer};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

const GOLDEN: &str = include_str!("golden/pipeline_depth1.txt");
const OPS: u64 = 512;
const SPAN: u64 = 40;

fn config_builder() -> IcashConfigBuilder {
    IcashConfig::builder(1 << 20, 128 << 10, 8 << 20)
        .scan_interval(16)
        .scan_window(32)
        .flush_interval(8)
        .log_blocks(2048)
}

fn config() -> IcashConfig {
    config_builder().build()
}

/// The pinned content for write `op` to `lba`: a shared base with a tiny
/// per-version tag, similar enough that the scanner forms references and
/// the codec produces small deltas.
fn payload(lba: u64, op: u64) -> BlockBuf {
    let mut v = vec![0xC3u8; 4096];
    v[..8].copy_from_slice(&((lba << 16) | op).to_le_bytes());
    v[2048] = (op % 251) as u8;
    BlockBuf::from_vec(v)
}

/// Drives the pinned scenario against one controller and returns the JSONL
/// event stream followed by a line of the stable controller counters.
/// Reads are verified against an in-test oracle, so the run also proves
/// content correctness, not just event-stream stability.
fn record(mut sys: Icash) -> String {
    let sink = Arc::new(Mutex::new(JsonlSink::new()));
    sys.set_tracer(Tracer::to_sink(
        sink.clone() as Arc<Mutex<dyn TraceSink + Send>>
    ));

    let backing = ZeroSource;
    let mut cpu = CpuModel::xeon();
    let mut ctx = IoCtx::verifying(&backing, &mut cpu);
    let mut oracle: HashMap<u64, BlockBuf> = HashMap::new();
    let mut t = Ns::ZERO;
    for op in 0..OPS {
        let lba = (op * 11) % SPAN;
        match op % 5 {
            4 => {
                let r = Request::read(Lba::new(lba), t);
                let c = sys.submit(&r, &mut ctx);
                t = c.finished;
                let want = oracle.get(&lba).cloned().unwrap_or_else(BlockBuf::zeroed);
                assert_eq!(c.data[0], want, "op {op}: lba {lba} read a stale version");
            }
            _ => {
                let content = payload(lba, op);
                oracle.insert(lba, content.clone());
                let w = Request::write(Lba::new(lba), t, content);
                t = sys.submit(&w, &mut ctx).finished;
            }
        }
        if op % 97 == 96 {
            t = sys.flush(t, &mut ctx);
        }
    }
    t = sys.flush(t, &mut ctx);
    let st = sys.stats();
    drop(sys);
    let mut text = sink.lock().expect("trace sink").take_text();
    text.push_str(&format!(
        "stats flushes={} log_blocks={} log_cleans={} writes={} reads={} \
         ram_hits={} delta_hits={} log_fetches={} delta_writes={} binds={} final_ns={}\n",
        st.flushes,
        st.log_blocks_written,
        st.log_cleans,
        st.writes,
        st.reads,
        st.ram_hits,
        st.delta_hits,
        st.log_fetches,
        st.delta_writes,
        st.binds,
        t.as_ns(),
    ));
    text
}

/// `group_commit_depth = 1` (the default) replays to the pre-pipeline
/// fixture byte for byte: trace stream, counters, and final virtual time.
#[test]
fn depth1_is_byte_identical_to_pre_pipeline_outputs() {
    let text = record(Icash::new(config()));
    if std::env::var("ICASH_REGEN_GOLDEN").as_deref() == Ok("1") {
        let path = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/tests/golden/pipeline_depth1.txt"
        );
        std::fs::write(path, &text).expect("regenerate golden fixture");
        eprintln!("regenerated {path}");
        return;
    }
    assert!(!text.is_empty(), "the scenario recorded no events");
    assert_eq!(
        text, GOLDEN,
        "depth=1 outputs drifted from the pre-pipeline fixture; the staged \
         pipeline must be byte-identical at depth 1 (regenerate only for an \
         intentional format change: ICASH_REGEN_GOLDEN=1)"
    );
}

/// Runs the same pinned scenario at an arbitrary depth and returns the
/// final stats (content is still verified against the oracle inside
/// `record`, so every depth proves read-your-writes along the way).
fn run_at_depth(depth: u64) -> icash::core::IcashStats {
    let sink = Arc::new(Mutex::new(JsonlSink::new()));
    let mut sys = Icash::new(config_builder().group_commit_depth(depth).build());
    sys.set_tracer(Tracer::to_sink(
        sink.clone() as Arc<Mutex<dyn TraceSink + Send>>
    ));
    let backing = ZeroSource;
    let mut cpu = CpuModel::xeon();
    let mut ctx = IoCtx::verifying(&backing, &mut cpu);
    let mut oracle: HashMap<u64, BlockBuf> = HashMap::new();
    let mut t = Ns::ZERO;
    for op in 0..OPS {
        let lba = (op * 11) % SPAN;
        match op % 5 {
            4 => {
                let r = Request::read(Lba::new(lba), t);
                let c = sys.submit(&r, &mut ctx);
                t = c.finished;
                let want = oracle.get(&lba).cloned().unwrap_or_else(BlockBuf::zeroed);
                assert_eq!(c.data[0], want, "depth {depth}, op {op}: stale read");
            }
            _ => {
                let content = payload(lba, op);
                oracle.insert(lba, content.clone());
                let w = Request::write(Lba::new(lba), t, content);
                t = sys.submit(&w, &mut ctx).finished;
            }
        }
    }
    sys.flush(t, &mut ctx);
    sys.debug_validate();
    sys.stats()
}

/// Deeper group commits amortize the sequential log appends: fewer flushes
/// reach the HDD for the same write stream, and each commit carries more
/// entries.
#[test]
fn deeper_commits_amortize_log_appends() {
    let d1 = run_at_depth(1);
    let d16 = run_at_depth(16);
    assert_eq!(d1.group_commits, 0, "depth 1 must never group-commit");
    assert_eq!(d1.staged_entries, 0, "depth 1 must never stage");
    assert!(d16.group_commits > 0, "depth 16 must group-commit");
    assert!(
        d16.flushes < d1.flushes,
        "group commit must reduce log appends: {} vs {}",
        d16.flushes,
        d1.flushes
    );
    assert!(
        d16.entries_per_commit() > 1.0,
        "commits must carry batched entries, got {}",
        d16.entries_per_commit()
    );
    assert!(d16.staging_high_water > 0);
}

/// A staged-but-uncommitted block must be readable from the staging buffer
/// (read-your-writes) without touching the HDD log.
#[test]
fn staged_blocks_serve_read_your_writes() {
    let mut sys = Icash::new(config_builder().group_commit_depth(64).build());
    let backing = ZeroSource;
    let mut cpu = CpuModel::xeon();
    let mut ctx = IoCtx::verifying(&backing, &mut cpu);

    // Write a span, then force one staging pass without a commit (depth 64
    // means the triggered flushes only stage).
    let mut t = Ns::ZERO;
    for lba in 0..24u64 {
        let w = Request::write(Lba::new(lba), t, payload(lba, 1));
        t = sys.submit(&w, &mut ctx).finished;
    }
    let st = sys.stats();
    assert!(
        st.staged_entries > 0,
        "flush triggers must stage at depth 64"
    );
    assert_eq!(st.group_commits, 0, "nothing must commit below the depth");
    let fetches_before = st.log_fetches;

    // Every block still reads back its latest content, with zero log
    // fetches: staged deltas are served from RAM.
    for lba in 0..24u64 {
        let r = Request::read(Lba::new(lba), t);
        let c = sys.submit(&r, &mut ctx);
        t = c.finished;
        assert_eq!(c.data[0], payload(lba, 1), "staged lba {lba} unreadable");
    }
    assert_eq!(
        sys.stats().log_fetches,
        fetches_before,
        "read-your-writes must not touch the HDD log"
    );
}

/// The ticket barrier: `await_flush` forces staged writes to stable media,
/// a second barrier on the same ticket is free, and `sync` covers the
/// whole pipeline.
#[test]
fn barriers_complete_tickets() {
    let mut sys = Icash::new(config_builder().group_commit_depth(32).build());
    let backing = ZeroSource;
    let mut cpu = CpuModel::xeon();
    let mut ctx = IoCtx::verifying(&backing, &mut cpu);

    let mut t = Ns::ZERO;
    for lba in 0..16u64 {
        let w = Request::write(Lba::new(lba), t, payload(lba, 2));
        t = sys.submit(&w, &mut ctx).finished;
    }
    let ticket = sys.write_ticket();
    assert!(
        sys.flushed_ticket() < ticket,
        "writes must be pending before the barrier"
    );
    t = Icash::await_flush(&mut sys, ticket, t, &mut ctx);
    assert!(
        sys.flushed_ticket() >= ticket,
        "barrier must complete the ticket"
    );
    let st = sys.stats();
    assert_eq!(st.barrier_waits, 1);

    // Re-awaiting the same ticket (and a full sync with nothing pending)
    // is free: no flush, no device work.
    let t2 = Icash::await_flush(&mut sys, ticket, t, &mut ctx);
    assert_eq!(t2, t, "a completed ticket must not flush again");
    let t3 = Icash::sync(&mut sys, t2, &mut ctx);
    assert_eq!(t3, t2, "sync with nothing pending must be free");
    assert_eq!(sys.stats().barrier_noops, 2);

    // Barrier-ed writes survive a crash.
    let mut recovered = sys.crash_and_recover();
    for lba in 0..16u64 {
        let r = Request::read(Lba::new(lba), t3);
        let c = recovered.submit(&r, &mut ctx);
        assert_eq!(
            c.data[0],
            payload(lba, 2),
            "barrier-ed lba {lba} lost in the crash"
        );
    }
}
