//! Property-based whole-system tests: under arbitrary op sequences, every
//! storage architecture behaves as a correct block device (read-your-
//! writes against a model map), and I-CASH additionally survives a crash
//! at an arbitrary point with all flushed data intact.

use icash::baselines::{DedupCache, LruCache, PureSsd, Raid0};
use icash::core::{Icash, IcashConfig};
use icash::storage::cpu::CpuModel;
use icash::storage::{BlockBuf, IoCtx, Lba, Ns, Request, StorageSystem, ZeroSource};
use proptest::prelude::*;
use std::collections::HashMap;

const SPAN: u64 = 64; // block address space of the tests

#[derive(Debug, Clone)]
enum SysOp {
    Write { lba: u64, tag: u8 },
    Read { lba: u64 },
    Flush,
}

fn ops_strategy() -> impl Strategy<Value = Vec<SysOp>> {
    prop::collection::vec(
        prop_oneof![
            (0..SPAN, any::<u8>()).prop_map(|(lba, tag)| SysOp::Write { lba, tag }),
            (0..SPAN).prop_map(|lba| SysOp::Read { lba }),
            Just(SysOp::Flush),
        ],
        1..200,
    )
}

/// Content with intra-family similarity so I-CASH's machinery engages.
fn block_for(tag: u8) -> BlockBuf {
    let mut v = vec![0xA7u8; 4096];
    v[3] = tag;
    v[1500] = tag.wrapping_mul(3);
    v[3000] = tag.wrapping_add(101);
    BlockBuf::from_vec(v)
}

fn check_system(mut system: Box<dyn StorageSystem>, ops: &[SysOp]) {
    let mut cpu = CpuModel::xeon();
    let backing = ZeroSource;
    let mut oracle: HashMap<u64, BlockBuf> = HashMap::new();
    let mut now = Ns::ZERO;
    for op in ops {
        match op {
            SysOp::Write { lba, tag } => {
                let content = block_for(*tag);
                oracle.insert(*lba, content.clone());
                let req = Request::write(Lba::new(*lba), now, content);
                let mut ctx = IoCtx::verifying(&backing, &mut cpu);
                let before = system.write_ticket();
                now = system.submit(&req, &mut ctx).finished;
                // Ticket parity across every architecture: accepting a
                // write advances the acceptance watermark, and durability
                // never runs ahead of acceptance.
                assert!(
                    system.write_ticket() > before,
                    "{}: write did not draw a ticket",
                    system.name()
                );
                assert!(
                    system.flushed_ticket() <= system.write_ticket(),
                    "{}: durability watermark ahead of acceptance",
                    system.name()
                );
            }
            SysOp::Read { lba } => {
                let req = Request::read(Lba::new(*lba), now);
                let mut ctx = IoCtx::verifying(&backing, &mut cpu);
                let completion = system.submit(&req, &mut ctx);
                assert!(completion.finished >= now, "time ran backwards");
                now = completion.finished;
                let want = oracle.get(lba).cloned().unwrap_or_else(BlockBuf::zeroed);
                assert_eq!(completion.data[0], want, "{}: lba {lba}", system.name());
            }
            SysOp::Flush => {
                let mut ctx = IoCtx::verifying(&backing, &mut cpu);
                now = system.flush(now, &mut ctx);
            }
        }
    }
    // A full barrier drains every pipeline: afterwards the durability
    // watermark has caught the acceptance watermark on any architecture.
    let mut ctx = IoCtx::verifying(&backing, &mut cpu);
    let _ = system.sync(now, &mut ctx);
    assert_eq!(
        system.flushed_ticket(),
        system.write_ticket(),
        "{}: sync left tickets in flight",
        system.name()
    );
}

fn tiny_icash() -> Icash {
    Icash::new(
        IcashConfig::builder(1 << 20, 256 << 10, 4 << 20)
            .scan_interval(40)
            .scan_window(64)
            .flush_interval(25)
            .log_blocks(1 << 14)
            .build(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn icash_is_a_correct_block_device(ops in ops_strategy()) {
        check_system(Box::new(tiny_icash()), &ops);
    }

    #[test]
    fn pure_ssd_is_a_correct_block_device(ops in ops_strategy()) {
        check_system(Box::new(PureSsd::new(4 << 20)), &ops);
    }

    #[test]
    fn raid0_is_a_correct_block_device(ops in ops_strategy()) {
        check_system(Box::new(Raid0::new(4 << 20, 4)), &ops);
    }

    #[test]
    fn lru_cache_is_a_correct_block_device(ops in ops_strategy()) {
        // A cache far smaller than the working set: eviction all the time.
        check_system(Box::new(LruCache::new(64 << 10, 4 << 20)), &ops);
    }

    #[test]
    fn dedup_cache_is_a_correct_block_device(ops in ops_strategy()) {
        check_system(Box::new(DedupCache::new(64 << 10, 4 << 20)), &ops);
    }

    /// Crash anywhere: after recovery, every block that was written before
    /// the last flush must read back as some version it legitimately held
    /// (its latest value as of the crash, or — for unflushed tails — an
    /// older durable version, never garbage).
    #[test]
    fn icash_crash_anywhere_never_corrupts(ops in ops_strategy(), crash_at in 0usize..200) {
        let mut system = tiny_icash();
        let mut cpu = CpuModel::xeon();
        let backing = ZeroSource;
        // All versions each lba ever held (plus the initial zero block).
        let mut versions: HashMap<u64, Vec<BlockBuf>> = HashMap::new();
        let mut now = Ns::ZERO;
        for op in ops.iter().take(crash_at.min(ops.len())) {
            match op {
                SysOp::Write { lba, tag } => {
                    let content = block_for(*tag);
                    versions.entry(*lba).or_default().push(content.clone());
                    let req = Request::write(Lba::new(*lba), now, content);
                    let mut ctx = IoCtx::new(&backing, &mut cpu);
                    now = system.submit(&req, &mut ctx).finished;
                }
                SysOp::Read { lba } => {
                    let req = Request::read(Lba::new(*lba), now);
                    let mut ctx = IoCtx::new(&backing, &mut cpu);
                    now = system.submit(&req, &mut ctx).finished;
                }
                SysOp::Flush => {
                    let mut ctx = IoCtx::new(&backing, &mut cpu);
                    now = system.flush(now, &mut ctx);
                }
            }
        }
        let mut recovered = system.crash_and_recover();
        for (lba, mut held) in versions {
            held.push(BlockBuf::zeroed()); // the pre-history version
            let req = Request::read(Lba::new(lba), now);
            let mut ctx = IoCtx::verifying(&backing, &mut cpu);
            let completion = recovered.submit(&req, &mut ctx);
            now = completion.finished;
            prop_assert!(
                held.contains(&completion.data[0]),
                "lba {lba}: recovered to a value it never held"
            );
        }
    }
}
