//! Differential guard for the device command-queue layer: absent (the
//! default), it must be invisible — zero queue counters, no queue trace
//! events, byte-identical behaviour to the pre-queue controller (the CI
//! gate additionally diffs `run_all`/`run_faults` artifacts against pinned
//! goldens). Present on a fault-free run, it may only *reschedule* device
//! time: every host read returns the same bytes, the same data reaches
//! stable media once a durability barrier lands, and the whole event
//! stream stays deterministic.

use icash::core::{Icash, IcashConfig};
use icash::storage::cpu::CpuModel;
use icash::storage::fault::fault_roll;
use icash::storage::queue::QueueConfig;
use icash::storage::trace::Tracer;
use icash::storage::{BlockBuf, IoCtx, Lba, Ns, Request, StorageSystem, ZeroSource};

const DATA: u64 = 8 << 20;
const SSD: u64 = 1 << 20;
const RAM: u64 = 256 << 10;
const SPACE: u64 = 512;
const OPS: u64 = 600;
const SEED: u64 = 0x0C17_AD00;

fn config(queue: Option<QueueConfig>) -> IcashConfig {
    let mut cfg = IcashConfig::builder(SSD, RAM, DATA)
        .scan_interval(50)
        .scan_window(64)
        .flush_interval(20)
        .build();
    cfg.queue = queue;
    cfg
}

/// One deterministic mixed op: 3:2 write:read over a hot block space, with
/// every fifth read widened to a 4-block span so the batched home-read
/// prefetch path runs. Returns the completion so callers can diff data.
fn step(sys: &mut dyn StorageSystem, ctx: &mut IoCtx<'_>, op: u64, t: Ns) -> (Ns, Vec<BlockBuf>) {
    let lba = fault_roll(SEED, 0x0C17, op, 0) % SPACE;
    let req = if fault_roll(SEED, 0x0C18, op, lba) % 5 < 3 {
        let mut bytes = vec![0xA5; 4096];
        bytes[..8].copy_from_slice(&op.to_le_bytes());
        Request::write(Lba::new(lba), t, BlockBuf::from_vec(bytes))
    } else if op % 5 == 0 {
        Request::read_span(Lba::new(lba.min(SPACE - 4)), 4, t)
    } else {
        Request::read(Lba::new(lba), t)
    };
    let c = sys.submit(&req, ctx);
    (c.finished, c.data)
}

/// Runs the fixed workload, ending with a full durability flush; returns
/// (per-op data payloads, traced JSONL, the flushed controller).
fn run(mut sys: Icash) -> (Vec<Vec<BlockBuf>>, Vec<String>, Icash) {
    let (tracer, ring) = Tracer::ring(1 << 16);
    sys.set_tracer(tracer);
    let backing = ZeroSource;
    let mut cpu = CpuModel::xeon();
    let mut ctx = IoCtx::verifying(&backing, &mut cpu);
    let mut t = Ns::ZERO;
    let mut payloads = Vec::with_capacity(OPS as usize);
    for op in 0..OPS {
        let (done, data) = step(&mut sys, &mut ctx, op, t);
        t = done;
        payloads.push(data);
    }
    let end = StorageSystem::flush(&mut sys, t, &mut ctx);
    assert!(end >= t);
    sys.debug_validate();
    let ring = ring.lock().expect("ring sink");
    assert_eq!(ring.dropped(), 0, "ring must hold the whole event stream");
    let jsonl = ring.events().iter().map(|e| e.to_json()).collect();
    (payloads, jsonl, sys)
}

#[test]
fn queue_off_counts_nothing_and_traces_nothing() {
    let (_, trace, sys) = run(Icash::new(config(None)));
    let report = sys.report(Ns::from_secs(1));
    let hdd = report.hdd.expect("hdd stats");
    let ssd = report.ssd.expect("ssd stats");
    assert_eq!(
        hdd.queue_admits + hdd.queue_reorders + hdd.queue_coalesced,
        0
    );
    assert_eq!(
        ssd.queue_admits + ssd.queue_reorders + ssd.queue_coalesced,
        0
    );
    assert!(
        !trace.iter().any(|line| line.contains("\"queue_admit\"")
            || line.contains("\"queue_reorder\"")
            || line.contains("\"coalesce\"")),
        "a queue-free build must emit no queue trace events"
    );
}

#[test]
fn queued_run_returns_identical_data_and_media_state() {
    let (plain, _, off) = run(Icash::new(config(None)));
    let (queued, _, on) = run(Icash::new(config(Some(QueueConfig::depth(8)))));
    assert_eq!(
        plain.len(),
        queued.len(),
        "same op count on both sides of the differential"
    );
    for (op, (a, b)) in plain.iter().zip(queued.iter()).enumerate() {
        assert_eq!(a, b, "op {op}: queueing changed the bytes a read returned");
    }
    // The queue reschedules device time; it must not change what reaches
    // the media. After the final barrier both controllers have written the
    // same log/home byte volume — just in fewer, larger bursts.
    let hdd_off = off.report(Ns::from_secs(1)).hdd.expect("hdd stats");
    let hdd_on = on.report(Ns::from_secs(1)).hdd.expect("hdd stats");
    assert_eq!(
        hdd_off.write_bytes, hdd_on.write_bytes,
        "queueing changed the bytes written to the HDD"
    );
    assert!(
        hdd_on.writes <= hdd_off.writes,
        "coalescing can only merge write commands, never mint new ones"
    );
    assert!(
        hdd_on.queue_admits > 0,
        "the flush cadence must have parked log appends in the write cache"
    );
}

#[test]
fn queued_run_is_deterministic() {
    let (data_a, trace_a, _) = run(Icash::new(config(Some(QueueConfig::depth(8)))));
    let (data_b, trace_b, _) = run(Icash::new(config(Some(QueueConfig::depth(8)))));
    assert_eq!(data_a, data_b);
    assert_eq!(
        trace_a, trace_b,
        "two identical queued runs must trace identically"
    );
}

#[test]
fn barrier_drains_the_write_cache() {
    // Durability contract: after `flush` returns, nothing sits parked in
    // the drive's volatile cache — the device is idle at or before the
    // returned instant and every accepted write's bytes are on media.
    let (_, trace, sys) = run(Icash::new(config(Some(QueueConfig::depth(8)))));
    assert!(
        trace.iter().any(|l| l.contains("\"queue_admit\"")),
        "the run must actually have exercised the write cache"
    );
    let hdd = sys.report(Ns::from_secs(1)).hdd.expect("hdd stats");
    assert!(hdd.write_bytes > 0, "log appends reached the platter");
    assert_eq!(
        sys.hdd().cached_writes(),
        0,
        "the final flush left writes parked in the volatile cache"
    );
}
