//! Differential guard for the scenario engine: with scenarios off (the
//! default), the closed-loop driver must be untouched — zero
//! `open_loop_arrival` events in the trace stream, no "Open-loop queued"
//! row in the profile, and a byte-identical deterministic event stream
//! (the CI gate additionally diffs `run_all`/`run_faults` artifacts
//! against pinned goldens). With the open-loop dispatcher on, the same
//! system must show its queueing in the trace — that contrast is the
//! whole point of the engine.

use std::sync::{Arc, Mutex};

use icash::core::{Icash, IcashConfig};
use icash::metrics::trace::{parse_jsonl, JsonlSink, TraceProfile};
use icash::storage::trace::{TraceSink, Tracer};
use icash::storage::{Ns, StorageSystem};
use icash::workloads::content::ContentModel;
use icash::workloads::driver::{run_benchmark, DriverConfig};
use icash::workloads::scenario::{run_open_loop, ArrivalShape, OpenLoopConfig};
use icash::workloads::workload::MixedWorkload;
use icash::workloads::WorkloadSpec;

const OPS: u64 = 400;
const SEED: u64 = 0x5CE2_F2EE;

/// A shrunk TPC-C spec: big enough to exercise reads, writes, and delta
/// hits, small enough to run in milliseconds.
fn spec() -> WorkloadSpec {
    let mut spec = icash::workloads::tpcc::spec();
    spec.data_bytes = 16 << 20;
    spec
}

fn system(spec: &WorkloadSpec) -> Icash {
    Icash::new(IcashConfig::builder(spec.ssd_bytes.min(4 << 20), 1 << 20, spec.data_bytes).build())
}

/// Runs the plain closed-loop driver with a JSONL sink attached and
/// returns the traced text.
fn closed_loop_trace() -> String {
    let spec = spec();
    let mut sys = system(&spec);
    let sink = Arc::new(Mutex::new(JsonlSink::new()));
    sys.set_tracer(Tracer::to_sink(
        sink.clone() as Arc<Mutex<dyn TraceSink + Send>>
    ));
    let mut wl = MixedWorkload::new(spec.clone(), SEED);
    let mut model = ContentModel::new(SEED, spec.profile.clone());
    let cfg = DriverConfig {
        clients: 4,
        ops: OPS,
        warmup_ops: OPS / 4,
        verify: false,
        guest_cache: false,
        cpu: None,
    };
    let summary = run_benchmark(&mut sys, &mut wl, &mut model, &cfg);
    assert_eq!(summary.ops, OPS);
    let mut sink = sink.lock().expect("jsonl sink");
    sink.take_text()
}

#[test]
fn closed_loop_emits_no_open_loop_events() {
    let text = closed_loop_trace();
    assert!(!text.is_empty(), "the traced run must produce events");
    assert!(
        !text.contains("open_loop_arrival"),
        "a scenario-free closed loop leaked open-loop arrival events"
    );
    let events = parse_jsonl(&text).expect("traced stream parses");
    let profile = TraceProfile::from_events(&events);
    assert_eq!(profile.open_loop_arrivals, 0);
    assert_eq!(profile.open_loop_queued, Ns::ZERO);
    assert!(
        !profile.render().contains("Open-loop queued"),
        "closed-loop profiles must not grow an open-loop row"
    );
}

#[test]
fn closed_loop_trace_is_deterministic() {
    assert_eq!(
        closed_loop_trace(),
        closed_loop_trace(),
        "same seed, same spec: the scenario-free stream must be byte-identical"
    );
}

#[test]
fn open_loop_burst_shows_its_queueing_in_the_profile() {
    // The contrast direction: drive the same system open-loop with a gap
    // far below its service time, so arrivals pile up behind one client.
    let spec = spec();
    let mut sys = system(&spec);
    let sink = Arc::new(Mutex::new(JsonlSink::new()));
    sys.set_tracer(Tracer::to_sink(
        sink.clone() as Arc<Mutex<dyn TraceSink + Send>>
    ));
    let mut wl = MixedWorkload::new(spec.clone(), SEED);
    let mut model = ContentModel::new(SEED, spec.profile.clone());
    let mut cfg = OpenLoopConfig::new(ArrivalShape::Burst.config(Ns::from_ns(200)), OPS, SEED);
    cfg.clients = 1;
    let (summary, stats) = run_open_loop(&mut sys, &mut wl, &mut model, &cfg, &Tracer::disabled());
    assert_eq!(summary.ops, OPS);
    assert!(
        stats.queued > Ns::ZERO,
        "an overloaded open loop must queue"
    );

    // The trace the system saw during the open-loop run carries the
    // arrival events through to the rendered profile.
    let mut sys = system(&spec);
    let mut wl = MixedWorkload::new(spec.clone(), SEED);
    let mut model = ContentModel::new(SEED, spec.profile.clone());
    let tracer = Tracer::to_sink(sink.clone() as Arc<Mutex<dyn TraceSink + Send>>);
    let (_, stats) = run_open_loop(&mut sys, &mut wl, &mut model, &cfg, &tracer);
    let text = sink.lock().expect("jsonl sink").take_text();
    let events = parse_jsonl(&text).expect("traced stream parses");
    let profile = TraceProfile::from_events(&events);
    assert_eq!(profile.open_loop_arrivals, OPS);
    assert_eq!(profile.open_loop_queued, stats.queued);
    assert!(
        profile.render().contains("Open-loop queued"),
        "an open-loop run must render its queued share"
    );
}
