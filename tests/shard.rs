//! Sharded-engine gate: the [`ShardRouter`] facade must be invisible at
//! one shard and correct at many.
//!
//! * **One-shard differential**: the same pinned scenario driven through a
//!   bare I-CASH controller and through a one-shard router produces
//!   byte-identical JSONL event streams and identical device reports —
//!   the router's fast path, shard-0 trace tagging, and ticket facade all
//!   serialize to nothing.
//! * **Multi-shard readback**: spans written across shard boundaries read
//!   back exactly, against an in-test oracle, with barriers (`sync`)
//!   interleaved — the router's split/reassemble arithmetic and ticket
//!   fan-out never lose a block.
//! * **Per-shard trace oracle**: a sharded run's JSONL splits cleanly by
//!   shard tag; every tag is in range, every per-shard stream parses, and
//!   the deterministic min-heap merge ([`merge_streams`]) over the
//!   time-sorted shard streams reassembles one globally time-ordered
//!   timeline with nothing lost.

use icash::core::{Icash, IcashConfig, IcashConfigBuilder};
use icash::metrics::trace::{parse_jsonl, split_by_shard, JsonlSink};
use icash::storage::block::{BlockBuf, Lba};
use icash::storage::cpu::CpuModel;
use icash::storage::request::Request;
use icash::storage::shard::{merge_streams, ShardRouter};
use icash::storage::system::{IoCtx, StorageSystem, ZeroSource};
use icash::storage::time::Ns;
use icash::storage::trace::{TraceSink, Tracer};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

const OPS: u64 = 400;
const SPAN: u64 = 48;

fn config_builder() -> IcashConfigBuilder {
    IcashConfig::builder(1 << 20, 128 << 10, 8 << 20)
        .scan_interval(16)
        .scan_window(32)
        .flush_interval(8)
        .log_blocks(2048)
}

/// The pinned content for write `op` to outer `lba`: similar blocks so the
/// controller forms references and codes deltas.
fn payload(lba: u64, op: u64) -> BlockBuf {
    let mut v = vec![0xB7u8; 4096];
    v[..8].copy_from_slice(&((lba << 20) | op).to_le_bytes());
    v[1024] = (op % 239) as u8;
    BlockBuf::from_vec(v)
}

/// Drives the pinned single-block scenario (writes, verified reads, and
/// periodic barriers) and returns the JSONL event stream plus a rendering
/// of the final device report.
fn record(sys: &mut dyn StorageSystem) -> (String, String) {
    let sink = Arc::new(Mutex::new(JsonlSink::new()));
    sys.set_tracer(Tracer::to_sink(
        sink.clone() as Arc<Mutex<dyn TraceSink + Send>>
    ));
    let backing = ZeroSource;
    let mut cpu = CpuModel::xeon();
    let mut ctx = IoCtx::verifying(&backing, &mut cpu);
    let mut oracle: HashMap<u64, BlockBuf> = HashMap::new();
    let mut t = Ns::ZERO;
    for op in 0..OPS {
        let lba = (op * 13) % SPAN;
        match op % 6 {
            4 => {
                let c = sys.submit(&Request::read(Lba::new(lba), t), &mut ctx);
                t = c.finished;
                let want = oracle.get(&lba).cloned().unwrap_or_else(BlockBuf::zeroed);
                assert_eq!(c.data[0], want, "op {op}: lba {lba} read a stale version");
            }
            5 => {
                t = sys.sync(t, &mut ctx);
                assert_eq!(
                    sys.flushed_ticket(),
                    sys.write_ticket(),
                    "op {op}: barrier left tickets in flight"
                );
            }
            _ => {
                let content = payload(lba, op);
                oracle.insert(lba, content.clone());
                let w = Request::write(Lba::new(lba), t, content);
                t = sys.submit(&w, &mut ctx).finished;
            }
        }
    }
    t = sys.flush(t, &mut ctx);
    let report = format!("{:?}", sys.report(t));
    let text = sink.lock().expect("sink").take_text();
    (text, report)
}

#[test]
fn one_shard_router_is_byte_identical_to_bare() {
    let mut bare = Icash::new(config_builder().build());
    let (bare_trace, bare_report) = record(&mut bare);

    let mut routed = ShardRouter::new(vec![Icash::new(config_builder().build())]);
    let (routed_trace, routed_report) = record(&mut routed);

    assert!(!bare_trace.is_empty(), "the scenario must trace something");
    assert_eq!(
        bare_trace, routed_trace,
        "a one-shard router must serialize to nothing"
    );
    assert_eq!(bare_report, routed_report);
}

/// A width-`n` router over I-CASH shards, each built from the shard slice
/// of the pinned config — the same construction `run_scale` uses.
fn sharded(n: u32) -> ShardRouter<Icash> {
    let slice = config_builder().build().shard_slice(n);
    ShardRouter::new((0..n).map(|_| Icash::new(slice.clone())).collect())
}

#[test]
fn multi_shard_spans_read_back_exactly() {
    let mut sys = sharded(3);
    let backing = ZeroSource;
    let mut cpu = CpuModel::xeon();
    let mut ctx = IoCtx::verifying(&backing, &mut cpu);
    let mut oracle: HashMap<u64, BlockBuf> = HashMap::new();
    let mut t = Ns::ZERO;
    for op in 0..300u64 {
        let base = (op * 7) % SPAN;
        let blocks = 1 + (op % 5) as u32; // spans cross shard boundaries
        if op % 3 == 2 {
            let c = sys.submit(&Request::read_span(Lba::new(base), blocks, t), &mut ctx);
            t = c.finished;
            assert_eq!(c.data.len(), blocks as usize);
            for (i, got) in c.data.iter().enumerate() {
                let want = oracle
                    .get(&(base + i as u64))
                    .cloned()
                    .unwrap_or_else(BlockBuf::zeroed);
                assert_eq!(*got, want, "op {op}: outer lba {} stale", base + i as u64);
            }
        } else {
            let content: Vec<BlockBuf> = (0..blocks as u64)
                .map(|i| {
                    let c = payload(base + i, op);
                    oracle.insert(base + i, c.clone());
                    c
                })
                .collect();
            let w = Request::write_span(Lba::new(base), t, content);
            t = sys.submit(&w, &mut ctx).finished;
        }
        if op % 37 == 36 {
            t = sys.sync(t, &mut ctx);
            assert_eq!(
                sys.flushed_ticket(),
                sys.write_ticket(),
                "op {op}: cross-shard barrier left tickets in flight"
            );
        }
    }
    // The merged report sees every shard's devices.
    let report = sys.report(t);
    let ssd = report.ssd.expect("sharded I-CASH has SSD stats");
    assert!(ssd.reads + ssd.writes > 0);
}

#[test]
fn sharded_trace_splits_cleanly_and_merges_in_time_order() {
    let width = 3u32;
    let mut sys = sharded(width);
    let (text, _report) = record(&mut sys);

    let shards = split_by_shard(&text).expect("sharded JSONL must validate");
    assert!(
        shards.len() >= 2,
        "a {width}-shard run must touch several shards, got {}",
        shards.len()
    );
    let mut streams = Vec::new();
    let mut total = 0usize;
    for (shard, doc) in &shards {
        assert!(*shard < width, "shard tag {shard} out of range");
        let events = parse_jsonl(doc).expect("per-shard stream parses");
        assert!(!events.is_empty());
        total += events.len();
        // Emission order is not timestamp order even unsharded (a device
        // completion can be stamped past a later-emitted host event), so
        // sort each shard's stream by its clock — stably, preserving the
        // emission order of equal-time events — before the merge.
        let mut stream: Vec<(Ns, ())> = events.into_iter().map(|e| (e.at, ())).collect();
        stream.sort_by_key(|&(at, _)| at);
        streams.push(stream);
    }
    // The deterministic shard-clock merge rebuilds one global timeline.
    let merged = merge_streams(streams);
    assert_eq!(merged.len(), total);
    for pair in merged.windows(2) {
        assert!(pair[0].0 <= pair[1].0, "merged stream must be time-sorted");
    }
}
