//! Differential guard: attaching a tracer must never change a simulated
//! outcome. Every architecture's full JSON run report — timings, energy,
//! device counters, controller stats — must be bit-identical with a
//! counting sink attached and with no tracer at all, so observability
//! provably costs nothing *inside* the simulation. (The companion guard,
//! `crates/bench/tests/trace_determinism.rs`, holds the emitted event
//! stream itself stable across worker-thread counts.)

use icash::baselines::{DedupCache, LruCache, PlainHdd, PureSsd, Raid0};
use icash::core::{Icash, IcashConfig};
use icash::storage::system::StorageSystem;
use icash::storage::trace::Tracer;
use icash::workloads::content::ContentModel;
use icash::workloads::driver::{run_benchmark, DriverConfig};
use icash::workloads::MixedWorkload;

const DATA: u64 = 16 << 20;
const SSD: u64 = 2 << 20;
const RAM: u64 = 512 << 10;
const OPS: u64 = 1_500;
const SEED: u64 = 0x1CA5_4001;

fn run_one(mut system: Box<dyn StorageSystem>, traced: bool) -> String {
    let counts = traced.then(|| {
        let (tracer, counts) = Tracer::counting();
        system.set_tracer(tracer);
        counts
    });
    let mut spec = icash::workloads::sysbench::spec();
    spec.data_bytes = DATA;
    spec.ssd_bytes = SSD;
    spec.ram_bytes = RAM;
    let mut workload = MixedWorkload::new(spec, SEED);
    let mut model = ContentModel::new(SEED, icash::workloads::sysbench::spec().profile);
    let cfg = DriverConfig {
        clients: 8,
        ops: OPS,
        warmup_ops: OPS / 10,
        verify: false,
        guest_cache: false,
        cpu: None,
    };
    let json = run_benchmark(system.as_mut(), &mut workload, &mut model, &cfg).to_json();
    if let Some(counts) = counts {
        assert!(
            counts.lock().expect("counting sink").requests > 0,
            "the traced run must actually emit events"
        );
    }
    json
}

fn icash_cfg() -> IcashConfig {
    IcashConfig::builder(SSD, RAM, DATA).build()
}

#[test]
fn attached_tracer_is_bit_identical_for_every_system() {
    let cases: Vec<(&str, fn() -> Box<dyn StorageSystem>)> = vec![
        ("FusionIO", || Box::new(PureSsd::new(DATA))),
        ("RAID0", || Box::new(Raid0::new(DATA, 4))),
        ("Dedup", || Box::new(DedupCache::new(SSD, DATA))),
        ("LRU", || Box::new(LruCache::new(SSD, DATA))),
        ("HDD", || Box::new(PlainHdd::new(DATA))),
        ("I-CASH", || Box::new(Icash::new(icash_cfg()))),
    ];
    for (name, build) in cases {
        let untraced = run_one(build(), false);
        let traced = run_one(build(), true);
        assert_eq!(
            untraced, traced,
            "{name}: attaching a tracer changed the run report"
        );
    }
}
