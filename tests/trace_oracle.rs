//! Trace oracle: the structured event stream is not advisory — its totals
//! must **exactly** equal the counters the systems report through
//! [`SystemReport`]/`RunSummary`/`IcashStats`. A counting-only sink
//! ([`TraceStats`]) tallies every event emitted during a full benchmark
//! run, and each total is diffed against the independently maintained
//! statistics: host requests, SSD reads/programs/erases, HDD operations,
//! injected faults, and (for I-CASH) the controller's delta/log/scrub
//! counters. Any drift between instrumentation and accounting fails here.
//!
//! [`SystemReport`]: icash::storage::system::SystemReport
//! [`TraceStats`]: icash::storage::trace::TraceStats

use icash::baselines::{DedupCache, LruCache, PlainHdd, PureSsd, Raid0};
use icash::core::{Icash, IcashConfig};
use icash::metrics::RunSummary;
use icash::storage::block::{BlockBuf, Lba};
use icash::storage::cpu::CpuModel;
use icash::storage::fault::{fault_roll, FaultPlan};
use icash::storage::request::Request;
use icash::storage::system::{IoCtx, StorageSystem, ZeroSource};
use icash::storage::time::Ns;
use icash::storage::trace::{TraceStats, Tracer};
use icash::workloads::content::ContentModel;
use icash::workloads::driver::{run_benchmark, DriverConfig};
use icash::workloads::MixedWorkload;

const DATA: u64 = 16 << 20;
const SSD: u64 = 2 << 20;
const RAM: u64 = 512 << 10;
const OPS: u64 = 1_500;
const SEED: u64 = 0x1CA5_4001;

/// The six architectures under the oracle: the paper's five plus the
/// cache-less plain disk (the degenerate case where the event stream maps
/// 1:1 onto device counters).
fn systems(plan: &FaultPlan) -> Vec<Box<dyn StorageSystem>> {
    vec![
        Box::new(PureSsd::new(DATA).with_fault_plan(plan)),
        Box::new(Raid0::new(DATA, 4).with_fault_plan(plan)),
        Box::new(DedupCache::new(SSD, DATA).with_fault_plan(plan)),
        Box::new(LruCache::new(SSD, DATA).with_fault_plan(plan)),
        Box::new(PlainHdd::new(DATA).with_fault_plan(plan)),
        Box::new(
            Icash::new(IcashConfig::builder(SSD, RAM, DATA).build()).with_fault_plan(plan.clone()),
        ),
    ]
}

/// Runs the standard mixed benchmark with a counting sink attached and
/// returns the event totals alongside the run's summary.
fn traced_run(mut system: Box<dyn StorageSystem>) -> (TraceStats, RunSummary) {
    let (tracer, counts) = Tracer::counting();
    system.set_tracer(tracer);
    let mut spec = icash::workloads::sysbench::spec();
    spec.data_bytes = DATA;
    spec.ssd_bytes = SSD;
    spec.ram_bytes = RAM;
    let mut workload = MixedWorkload::new(spec, SEED);
    let mut model = ContentModel::new(SEED, icash::workloads::sysbench::spec().profile);
    let cfg = DriverConfig {
        clients: 8,
        ops: OPS,
        warmup_ops: OPS / 10,
        verify: false,
        guest_cache: false,
        cpu: None,
    };
    let summary = run_benchmark(system.as_mut(), &mut workload, &mut model, &cfg);
    drop(system);
    let stats = counts.lock().expect("counting sink").clone();
    (stats, summary)
}

/// Every equality the trace owes the report, for any architecture.
fn check_against_report(t: &TraceStats, s: &RunSummary) {
    let name = &s.system;
    let report = &s.report;
    assert_eq!(t.requests, s.ops, "{name}: request spans vs ops");
    assert_eq!(
        t.read_requests + t.write_requests,
        t.requests,
        "{name}: every span is a read or a write"
    );
    if let Some(ssd) = &report.ssd {
        assert_eq!(t.ssd_reads, ssd.reads, "{name}: ssd reads");
        assert_eq!(t.ssd_programs, ssd.writes, "{name}: ssd programs");
        assert_eq!(t.ssd_programs, s.ssd_writes, "{name}: summary ssd_writes");
    } else {
        assert_eq!(t.ssd_reads + t.ssd_programs, 0, "{name}: no SSD, no events");
    }
    if let Some(gc) = &report.gc {
        assert_eq!(t.ssd_erases, gc.erases, "{name}: flash erases");
        assert_eq!(t.ssd_gc_programs, gc.gc_programs, "{name}: gc programs");
    }
    if let Some(hdd) = &report.hdd {
        assert_eq!(t.hdd_reads, hdd.reads, "{name}: hdd reads");
        assert_eq!(t.hdd_writes, hdd.writes, "{name}: hdd writes");
    } else {
        assert_eq!(t.hdd_reads + t.hdd_writes, 0, "{name}: no HDD, no events");
    }
    let f = &report.faults;
    assert_eq!(t.faults_hdd_read, f.hdd_read_errors, "{name}: hdd faults");
    assert_eq!(
        t.faults_hdd_write, f.hdd_write_errors,
        "{name}: hdd write faults"
    );
    assert_eq!(t.faults_ssd_read, f.ssd_read_errors, "{name}: ssd faults");
    assert_eq!(t.faults_wearout, f.wearout_errors, "{name}: wearout faults");
    assert_eq!(t.faults_remapped, f.sectors_remapped, "{name}: remaps");
}

#[test]
fn totals_match_reports_fault_free() {
    for system in systems(&FaultPlan::none()) {
        let (t, s) = traced_run(system);
        check_against_report(&t, &s);
        assert_eq!(
            t.faults_hdd_read + t.faults_hdd_write + t.faults_ssd_read,
            0,
            "{}: fault-free run emitted fault events",
            s.system
        );
        assert!(t.requests > 0, "{}: no request spans recorded", s.system);
    }
}

#[test]
fn totals_match_reports_under_faults() {
    let plan = FaultPlan::seeded(0xFA11)
        .hdd_read_errors(2e-3)
        .hdd_write_errors(2e-3)
        .ssd_read_errors(2e-3);
    let mut injected = 0u64;
    for system in systems(&plan) {
        let (t, s) = traced_run(system);
        check_against_report(&t, &s);
        injected += t.faults_hdd_read + t.faults_hdd_write + t.faults_ssd_read;
    }
    assert!(injected > 0, "the campaign must actually inject faults");
}

/// The controller-level counters: drive an I-CASH instance directly (no
/// preload, full control of the op stream) under faults aggressive enough
/// to exercise retries, repairs, and the scrub ladder, then require the
/// trace totals to equal [`IcashStats`] field for field.
///
/// [`IcashStats`]: icash::core::IcashStats
#[test]
fn icash_controller_counters_match_trace() {
    let plan = FaultPlan::seeded(0xFA02)
        .hdd_read_errors(1e-3)
        .hdd_write_errors(1e-3)
        .ssd_read_errors(1e-3)
        .scrub_every(97);
    let mut sys = Icash::new(
        IcashConfig::builder(1 << 20, 256 << 10, 8 << 20)
            .scan_interval(50)
            .scan_window(64)
            .flush_interval(20)
            .log_blocks(4096)
            .build(),
    )
    .with_fault_plan(plan);
    let (tracer, counts) = Tracer::counting();
    sys.set_tracer(tracer);

    let backing = ZeroSource;
    let mut cpu = CpuModel::xeon();
    let mut ctx = IoCtx::verifying(&backing, &mut cpu);
    let space = 2048u64;
    let mut t = Ns::ZERO;
    let (mut reads, mut writes) = (0u64, 0u64);
    for op in 0..2_000u64 {
        let roll = fault_roll(0xFA02, 0x5EED, op, 0);
        let lba = roll % space;
        if roll % 5 < 3 {
            let mut v = vec![0xA5u8; 4096];
            v[..8].copy_from_slice(&roll.to_le_bytes());
            let w = Request::write(Lba::new(lba), t, BlockBuf::from_vec(v));
            t = sys.submit(&w, &mut ctx).finished;
            writes += 1;
        } else {
            let r = Request::read(Lba::new(lba), t);
            t = sys.submit(&r, &mut ctx).finished;
            reads += 1;
        }
    }
    t = sys.flush(t, &mut ctx);
    let stats = sys.stats();
    let report = sys.report(t);
    drop(sys);
    let trace = counts.lock().expect("counting sink").clone();

    assert_eq!(trace.read_requests, reads);
    assert_eq!(trace.write_requests, writes);
    assert_eq!(trace.read_requests, stats.reads, "host reads");
    assert_eq!(trace.write_requests, stats.writes, "host writes");
    assert_eq!(trace.ram_hits, stats.ram_hits, "RAM hits");
    assert_eq!(trace.delta_decodes, stats.delta_hits, "delta hits");
    assert_eq!(trace.sig_binds, stats.binds, "signature bindings");
    assert_eq!(trace.log_flushes, stats.flushes, "log flushes");
    assert_eq!(trace.log_blocks, stats.log_blocks_written, "log blocks");
    assert_eq!(trace.log_cleans, stats.log_cleans, "log cleans");
    assert_eq!(trace.scrubs, stats.scrubs, "scrub passes");
    assert_eq!(trace.slot_repairs, stats.slot_repairs, "slot repairs");
    assert_eq!(trace.fault_retries, stats.fault_retries, "fault retries");
    assert_eq!(
        trace.ssd_erases,
        report.gc.as_ref().expect("I-CASH has an SSD").erases,
        "flash erases"
    );

    // The fault rates must actually have exercised the resilience ladder,
    // or the equalities above are vacuous.
    assert!(trace.delta_decodes > 0, "no delta hits exercised");
    assert!(trace.log_flushes > 0, "no flushes exercised");
    assert!(trace.fault_retries > 0, "no retries exercised");
    assert!(trace.scrubs > 0, "no scrubs exercised");
}

/// The queue-event totals: a queued fault-free I-CASH run must emit
/// exactly one `QueueAdmit` per counted admission and agree with the
/// device reports on reorders, coalesces, and peak occupancy.
#[test]
fn icash_queue_counters_match_trace() {
    let mut cfg = IcashConfig::builder(SSD, RAM, 8 << 20)
        .scan_interval(50)
        .scan_window(64)
        .flush_interval(20)
        .build();
    cfg.queue = Some(icash::storage::queue::QueueConfig::depth(8));
    let mut sys = Icash::new(cfg);
    let (tracer, counts) = Tracer::counting();
    sys.set_tracer(tracer);

    let backing = ZeroSource;
    let mut cpu = CpuModel::xeon();
    let mut ctx = IoCtx::verifying(&backing, &mut cpu);
    let space = 2048u64;
    let mut t = Ns::ZERO;
    for op in 0..2_000u64 {
        let roll = fault_roll(SEED, 0x5EED, op, 0);
        let lba = roll % space;
        if roll % 5 < 3 {
            let mut v = vec![0xA5u8; 4096];
            v[..8].copy_from_slice(&roll.to_le_bytes());
            let w = Request::write(Lba::new(lba), t, BlockBuf::from_vec(v));
            t = sys.submit(&w, &mut ctx).finished;
        } else {
            let r = Request::read_span(Lba::new(lba.min(space - 4)), 4, t);
            t = sys.submit(&r, &mut ctx).finished;
        }
    }
    t = sys.flush(t, &mut ctx);
    let report = sys.report(t);
    drop(sys);
    let trace = counts.lock().expect("counting sink").clone();

    let hdd = report.hdd.expect("hdd stats");
    let ssd = report.ssd.expect("ssd stats");
    assert_eq!(
        trace.queue_admits,
        hdd.queue_admits + ssd.queue_admits,
        "queue admissions"
    );
    assert_eq!(
        trace.queue_reorders,
        hdd.queue_reorders + ssd.queue_reorders,
        "queue reorders"
    );
    assert_eq!(
        trace.coalesced_commands,
        hdd.queue_coalesced + ssd.queue_coalesced,
        "coalesced commands"
    );
    assert_eq!(
        trace.queue_depth_max,
        hdd.queue_depth_max.max(ssd.queue_depth_max),
        "peak queue occupancy"
    );
    // The run must actually have exercised the queue machinery, or the
    // equalities above are vacuous.
    assert!(trace.queue_admits > 0, "no admissions exercised");
    assert!(trace.queue_reorders > 0, "no reorders exercised");
    assert!(trace.coalesced_commands > 0, "no coalescing exercised");
}

/// The write-pipeline counters: at `group_commit_depth = 16`, every
/// `StageEnter`/`GroupCommit`/`Barrier` event in the trace must reconcile
/// field for field with [`IcashStats`] and the `group_commit` section of
/// the [`SystemReport`].
///
/// [`IcashStats`]: icash::core::IcashStats
/// [`SystemReport`]: icash::storage::system::SystemReport
#[test]
fn icash_pipeline_counters_match_trace() {
    let mut sys = Icash::new(
        IcashConfig::builder(1 << 20, 256 << 10, 8 << 20)
            .scan_interval(50)
            .scan_window(64)
            .flush_interval(20)
            .log_blocks(4096)
            .group_commit_depth(16)
            .build(),
    );
    let (tracer, counts) = Tracer::counting();
    sys.set_tracer(tracer);

    let backing = ZeroSource;
    let mut cpu = CpuModel::xeon();
    let mut ctx = IoCtx::verifying(&backing, &mut cpu);
    let space = 2048u64;
    let mut t = Ns::ZERO;
    for op in 0..4_000u64 {
        let roll = fault_roll(0x6C01, 0x5EED, op, 0);
        let lba = roll % space;
        if roll % 5 < 3 {
            let mut v = vec![0xA5u8; 4096];
            v[..8].copy_from_slice(&roll.to_le_bytes());
            let w = Request::write(Lba::new(lba), t, BlockBuf::from_vec(v));
            t = sys.submit(&w, &mut ctx).finished;
        } else {
            let r = Request::read(Lba::new(lba), t);
            t = sys.submit(&r, &mut ctx).finished;
        }
        if op % 1_000 == 999 {
            // Periodic durability barriers: some wait, some are no-ops.
            t = sys.await_flush(sys.write_ticket(), t, &mut ctx);
            t = sys.sync(t, &mut ctx);
        }
    }
    t = sys.flush(t, &mut ctx);
    let stats = sys.stats();
    let report = sys.report(t);
    drop(sys);
    let trace = counts.lock().expect("counting sink").clone();

    assert_eq!(trace.stage_enters, stats.staged_entries, "staged entries");
    assert_eq!(trace.group_commits, stats.group_commits, "group commits");
    assert_eq!(
        trace.group_commit_entries, stats.group_commit_entries,
        "entries per commit numerator"
    );
    assert_eq!(
        trace.group_commit_bytes, stats.group_commit_bytes,
        "group-commit payload bytes"
    );
    assert_eq!(trace.barrier_waits, stats.barrier_waits, "barrier waits");
    assert_eq!(trace.barrier_noops, stats.barrier_noops, "barrier no-ops");
    assert_eq!(trace.log_flushes, stats.flushes, "log flushes");
    assert_eq!(trace.log_blocks, stats.log_blocks_written, "log blocks");

    let gc = report
        .group_commit
        .as_ref()
        .expect("I-CASH reports the pipeline");
    assert_eq!(gc.commits, trace.group_commits, "report commits");
    assert_eq!(gc.entries, trace.group_commit_entries, "report entries");
    assert_eq!(gc.bytes, trace.group_commit_bytes, "report bytes");
    assert_eq!(gc.staged_high_water, stats.staging_high_water, "high water");

    // The scenario must actually exercise the pipeline, or every equality
    // above is vacuous.
    assert!(trace.stage_enters > 0, "nothing staged");
    assert!(trace.group_commits > 0, "nothing group-committed");
    assert!(trace.barrier_waits > 0, "no barrier waited");
    assert!(trace.barrier_noops > 0, "no barrier no-op exercised");
    assert!(
        stats.entries_per_commit() > 1.0,
        "commits carried no batching: {}",
        stats.entries_per_commit()
    );
}
